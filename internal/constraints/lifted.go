package constraints

import (
	"context"
	"fmt"
	"sort"
	"time"

	"llhsc/internal/addr"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/obs"
	"llhsc/internal/sat"
	"llhsc/internal/schema"
)

// This file implements family-based lifted checking (DESIGN.md §14):
// the three constraint families run once over the variability-aware
// merged tree (delta.LiftedTree) instead of once per derived product.
// Every potential violation is guarded by a presence condition, and a
// single incremental SAT session — seeded with the feature-model
// formula via featmodel.PresenceEncoder — answers, per violation, the
// lifted question "does ANY valid configuration exhibit this?" in one
// assumption solve. A Sat answer decodes to a concrete witness
// configuration, so reports stay as actionable as enumerative ones.
//
// The word-level tier (DESIGN.md §13) keeps its place at the front of
// the decision ladder: region variants in the merged tree are fully
// concrete values, so DecideConcretePair settles the geometry of every
// candidate pair exactly, and the SAT session only ever decides
// *reachability* — whether the two artifacts coexist in a valid
// product. Nothing symbolic about addresses reaches the solver.

// Interpretation contexts and schema worlds are products of guarded
// choices; these caps bound the blowup on adversarial inputs, with an
// honest finding emitted when coverage is truncated.
const (
	maxInterpContexts = 16
	maxSchemaWorlds   = 64
)

// LiftedFinding is one family-based verdict: a violation that at least
// one valid configuration exhibits, plus that configuration (decoded
// from the solver model — the witness product).
type LiftedFinding struct {
	// Family names the constraint family: "apply", "semantic",
	// "schema", "interrupt" or "memreserve".
	Family    string
	Violation Violation
	// Config is a valid configuration exhibiting the violation,
	// decoded from the SAT model of the lifted query.
	Config featmodel.Configuration
}

func (f LiftedFinding) String() string {
	return fmt.Sprintf("[%s] %s (config %v)", f.Family, f.Violation, f.Config.Sorted())
}

// LiftedStats describes the solver work of the most recent lifted
// check: how many lifted queries the one shared session answered, and
// how much never reached it.
type LiftedStats struct {
	// Queries is the number of assumption solves issued against the
	// shared incremental session.
	Queries int
	// Pruned counts guards the session proved unreachable — candidate
	// violations (or whole schema worlds) no valid configuration can
	// exhibit, discharged family-wide by one Unsat answer each.
	Pruned int
	// WordDecided counts region pairs the word-level tier settled with
	// interval arithmetic; disjoint pairs never reach the session.
	WordDecided int
	// Regions is the number of guarded region variants collected.
	Regions int
	// Contexts is the number of interpretation contexts explored
	// during region collection (cell-size/ranges variant splits).
	Contexts int
	// Worlds is the number of schema worlds (concrete property
	// combinations) explored.
	Worlds int
	// Findings is the number of reachable violations reported.
	Findings int
	// Solver aggregates the shared session's SAT work.
	Solver sat.Stats
}

// LiftedChecker verifies all constraint families over an un-derived
// product line in one incremental solver session. Like the enumerative
// checkers it is a façade; unlike them it owns a long-lived solver per
// CheckContext call and is single-goroutine for the duration of a call.
type LiftedChecker struct {
	// Model is the feature model whose formula seeds the session.
	Model *featmodel.Model
	// Schemas, when non-nil, enables the lifted syntactic family.
	Schemas *schema.Set
	// CheckMemoryBanks mirrors SemanticChecker.CheckMemoryBanks.
	CheckMemoryBanks bool
	// SkipInterrupts disables the lifted interrupt-uniqueness family,
	// mirroring core.Pipeline.SkipInterrupts.
	SkipInterrupts bool
	// LintOnly keeps only the structural families (apply conflicts and
	// the lifted schema checks), skipping the semantic, interrupt and
	// memreserve families — the lifted image of the pipeline's
	// overload-shedding mode.
	LintOnly bool
	// Budget bounds the shared session's work per CheckContext call.
	Budget sat.Budget
	// OnQuery, when non-nil, receives one QueryRecord per reachability
	// query the shared session answers (cache hits in the guard cache
	// never reach it). Same contract as SemanticChecker.OnQuery: the
	// hook runs inline, and leaving it nil keeps the query loop free of
	// record construction.
	OnQuery func(obs.QueryRecord)

	stats LiftedStats
}

// NewLiftedChecker returns a checker with the enumerative pipeline's
// defaults.
func NewLiftedChecker(m *featmodel.Model, schemas *schema.Set) *LiftedChecker {
	return &LiftedChecker{Model: m, Schemas: schemas, CheckMemoryBanks: true}
}

// LastStats returns the work counters of the most recent CheckContext
// call on this checker.
func (lc *LiftedChecker) LastStats() LiftedStats { return lc.stats }

// Check is CheckContext without cancellation.
func (lc *LiftedChecker) Check(lt *delta.LiftedTree) []LiftedFinding {
	out, _ := lc.CheckContext(context.Background(), lt)
	return out
}

// CheckContext runs every lifted family over the merged tree and
// returns the reachable violations with their witness configurations,
// sorted deterministically. A non-nil error (a *sat.LimitError or
// context error) means the session's budget cut the check short;
// findings confirmed up to that point are still returned.
func (lc *LiftedChecker) CheckContext(ctx context.Context, lt *delta.LiftedTree) ([]LiftedFinding, error) {
	lc.stats = LiftedStats{}
	pe := featmodel.NewPresenceEncoder(lc.Model)
	pe.SetBudget(lc.Budget)
	r := &liftedRun{
		lc:    lc,
		pe:    pe,
		ctx:   ctx,
		seen:  make(map[string]bool),
		reach: make(map[string]reachResult),
	}

	r.applyConflicts(lt)
	r.schemaFamily(lt)
	if !lc.LintOnly {
		rootACs, regions := r.collectLiftedRegions(lt)
		lc.stats.Regions = len(regions)
		r.semantic(regions)
		if !lc.SkipInterrupts {
			r.interrupts(lt)
		}
		r.memreserve(lt, rootACs, regions)
	}

	lc.stats.Queries = pe.Queries()
	lc.stats.Solver = pe.Stats()
	lc.stats.Findings = len(r.findings)
	sort.SliceStable(r.findings, func(i, j int) bool {
		a, b := r.findings[i], r.findings[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		if a.Violation.Path != b.Violation.Path {
			return a.Violation.Path < b.Violation.Path
		}
		if a.Violation.Property != b.Violation.Property {
			return a.Violation.Property < b.Violation.Property
		}
		if a.Violation.Rule != b.Violation.Rule {
			return a.Violation.Rule < b.Violation.Rule
		}
		return a.Violation.Message < b.Violation.Message
	})
	return r.findings, r.err
}

// reachResult caches one guard's lifted verdict: whether any valid
// configuration satisfies it, and if so which.
type reachResult struct {
	ok  bool
	cfg featmodel.Configuration
}

// liftedRun is the per-call state of a lifted check.
type liftedRun struct {
	lc  *LiftedChecker
	pe  *featmodel.PresenceEncoder
	ctx context.Context

	findings []LiftedFinding
	seen     map[string]bool        // finding dedup across contexts/worlds
	reach    map[string]reachResult // guard string → cached verdict
	err      error                  // first budget/cancellation error
}

// reachable asks the shared session whether any valid configuration
// satisfies the guard (nil = true, i.e. "is the model non-void").
// Results are cached by the guard's canonical string, so repeated
// guards — the common case, since a handful of delta activation
// conditions dominate a merged tree — cost one query total.
func (r *liftedRun) reachable(cond *featmodel.Expr) (bool, featmodel.Configuration) {
	if r.err != nil {
		return false, nil
	}
	key := "-"
	if cond != nil {
		key = cond.String()
	}
	if res, hit := r.reach[key]; hit {
		return res.ok, res.cfg
	}
	lit := r.pe.Literal(cond)
	var t0 time.Time
	var before sat.Stats
	if r.lc.OnQuery != nil {
		t0 = time.Now()
		before = r.pe.Stats()
	}
	st, err := r.pe.SolveContext(r.ctx, lit)
	res := reachResult{ok: err == nil && st == sat.Sat}
	if res.ok {
		res.cfg = r.pe.Config()
	}
	if r.lc.OnQuery != nil {
		r.lc.emitReach(key, st, err, time.Since(t0), r.pe.Stats().Sub(before), res.cfg)
	}
	if err != nil {
		r.err = err
		return false, nil
	}
	if !res.ok {
		r.lc.stats.Pruned++
	}
	r.reach[key] = res
	return res.ok, res.cfg
}

// emitReach builds and delivers one lifted reachability record. Called
// only when OnQuery is non-nil.
func (lc *LiftedChecker) emitReach(key string, st sat.Status, err error, elapsed time.Duration, d sat.Stats, cfg featmodel.Configuration) {
	q := obs.QueryRecord{
		Family:       "lifted",
		Tier:         "lifted",
		Query:        key,
		Verdict:      "unsat",
		Millis:       float64(elapsed) / float64(time.Millisecond),
		Conflicts:    d.Conflicts,
		Decisions:    d.Decisions,
		Propagations: d.Propagations,
	}
	switch {
	case err != nil:
		q.Verdict = "limit"
	case st == sat.Sat:
		q.Verdict = "sat"
		q.Witness = fmt.Sprintf("%v", cfg.Sorted())
	}
	lc.OnQuery(q)
}

// emit reports a violation if its guard is reachable.
func (r *liftedRun) emit(family string, cond *featmodel.Expr, v Violation) {
	ok, cfg := r.reachable(cond)
	if !ok {
		return
	}
	r.emitWith(cfg, family, v)
}

// emitWith reports a violation with an already-decoded witness
// configuration, deduplicating identical findings produced by
// different interpretation contexts or worlds.
func (r *liftedRun) emitWith(cfg featmodel.Configuration, family string, v Violation) {
	key := family + "\x00" + v.Path + "\x00" + v.Property + "\x00" + v.Rule + "\x00" + v.Message
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.findings = append(r.findings, LiftedFinding{Family: family, Violation: v, Config: cfg})
}

// applyConflicts discharges the merge-time conflicts (missing targets,
// double-adds, ambiguous orders): each becomes one lifted query, and
// only conflicts some valid configuration actually hits are reported —
// the family-based image of the per-product ApplyError.
func (r *liftedRun) applyConflicts(lt *delta.LiftedTree) {
	for _, c := range lt.Conflicts {
		r.emit("apply", c.Cond, Violation{
			Path: c.Location,
			Rule: "lifted:apply-conflict",
			Message: fmt.Sprintf("delta %s: %s", c.Delta, c.Msg),
		})
	}
}

// valueOption is one mutually exclusive value a lifted property can
// take: the property has value *value in configurations satisfying
// cond, or is absent there when value is nil.
type valueOption struct {
	cond   *featmodel.Expr
	value  *dts.Value
	origin dts.Origin
}

// chosenOptions converts a lifted property's variant list into its
// mutually exclusive chosen-value options under last-writer-wins
// projection: variant i is chosen exactly when its guard holds and no
// later variant's guard does (later deltas append later), and the
// property is absent when no guard holds. Options whose guard is
// structurally false (an unconditional later variant shadows them) are
// omitted. A nil property yields the single always-absent option.
func chosenOptions(lp *delta.LiftedProperty) []valueOption {
	if lp == nil || len(lp.Variants) == 0 {
		return []valueOption{{}}
	}
	vs := lp.Variants
	var opts []valueOption
	var laterNeg *featmodel.Expr // ∧ ¬cond_j for every variant j after i
	for i := len(vs) - 1; i >= 0; i-- {
		v := vs[i]
		opts = append(opts, valueOption{
			cond:   featmodel.AndOpt(v.Cond, laterNeg),
			value:  &v.Value,
			origin: v.Origin,
		})
		if v.Cond == nil {
			// An unconditional write shadows every earlier variant and
			// makes absence impossible.
			return opts
		}
		laterNeg = featmodel.AndOpt(laterNeg, featmodel.Not(v.Cond))
	}
	return append(opts, valueOption{cond: laterNeg}) // absent
}

// cellOption is one guarded value of a #address-cells/#size-cells-style
// property, with the concrete default applied for absent options.
type cellOption struct {
	cond *featmodel.Expr
	n    int
}

// cellOptions mirrors dts.Node.CellValue over a lifted node: the first
// u32 cell of each chosen option, falling back to def when the option
// is absent or has no cells.
func cellOptions(ln *delta.LiftedNode, name string, def int) []cellOption {
	var out []cellOption
	for _, o := range chosenOptions(ln.Prop(name)) {
		v := def
		if o.value != nil {
			if cells := o.value.Cells(); len(cells) > 0 {
				v = int(cells[0].Val)
			}
		}
		out = append(out, cellOption{cond: o.cond, n: v})
	}
	return out
}

// kindOption is a guarded region kind, derived from the chosen options
// of device_type and compatible exactly as addr.CollectRegions derives
// the kind from the concrete properties.
type kindOption struct {
	cond *featmodel.Expr
	kind addr.Kind
}

func kindOptions(ln *delta.LiftedNode) []kindOption {
	dtOpts := chosenOptions(ln.Prop("device_type"))
	compatOpts := chosenOptions(ln.Prop("compatible"))
	// Accumulate one option per distinct kind, disjoining guards, in
	// first-seen order for determinism.
	var order []addr.Kind
	conds := make(map[addr.Kind]*featmodel.Expr)
	seen := make(map[addr.Kind]bool)
	for _, d := range dtOpts {
		dstr := ""
		if d.value != nil {
			if ss := d.value.Strings(); len(ss) > 0 {
				dstr = ss[0]
			}
		}
		for _, c := range compatOpts {
			kind := addr.KindDevice
			switch {
			case dstr == "memory":
				kind = addr.KindMemory
			case compatIsVirtual(c.value):
				kind = addr.KindVirtual
			}
			cond := featmodel.AndOpt(d.cond, c.cond)
			if !seen[kind] {
				seen[kind] = true
				order = append(order, kind)
				conds[kind] = cond
			} else {
				conds[kind] = featmodel.OrOpt(conds[kind], cond)
			}
		}
	}
	out := make([]kindOption, 0, len(order))
	for _, k := range order {
		out = append(out, kindOption{cond: conds[k], kind: k})
	}
	return out
}

// compatIsVirtual mirrors addr.IsVirtualDevice on one chosen value of
// the compatible property.
func compatIsVirtual(v *dts.Value) bool {
	if v == nil {
		return false
	}
	for _, c := range v.Strings() {
		if c == "veth" || len(c) >= len("virtual") && c[:len("virtual")] == "virtual" {
			return true
		}
	}
	return false
}

// liftedRegion is an address region variant of the merged tree: the
// concrete geometry addr.CollectRegions would produce, guarded by the
// conjunction of the node's presence condition, the interpretation
// context that decoded it, and the chosen-guards of the properties
// that shaped it.
type liftedRegion struct {
	reg   addr.Region
	cond  *featmodel.Expr
	width int
}

// interpCtx is one interpretation context of the region walk: the
// #address-cells/#size-cells in force for a node's children and the
// composed ranges translation to the root, guarded by the chosen-guards
// of every cell/ranges decision on the path. Contexts with different
// root #address-cells carry different bit widths and are mutually
// exclusive by construction.
type interpCtx struct {
	cond      *featmodel.Expr
	ac, sc    int
	width     int
	translate func(a, s uint64) (uint64, bool)
}

// collectLiftedRegions mirrors addr.CollectRegions over the merged
// tree, splitting into interpretation contexts wherever a cell-size or
// ranges property is variant. Decoding problems (arity, overflow,
// uncovered translations) are emitted as guarded "semantic:regions"
// findings, like the concrete collector's error return. It returns the
// root #address-cells options (each fixing a bit width) and the guarded
// region variants.
func (r *liftedRun) collectLiftedRegions(lt *delta.LiftedTree) ([]cellOption, []liftedRegion) {
	identity := func(a, s uint64) (uint64, bool) { return a, true }
	rootACs := cellOptions(lt.Root, "#address-cells", 2)

	var rootCtxs []interpCtx
	for _, acO := range rootACs {
		width := addr.BitWidth(acO.n)
		for _, scO := range cellOptions(lt.Root, "#size-cells", 1) {
			rootCtxs = append(rootCtxs, interpCtx{
				cond:      featmodel.AndOpt(acO.cond, scO.cond),
				ac:        acO.n,
				sc:        scO.n,
				width:     width,
				translate: identity,
			})
		}
	}

	var out []liftedRegion
	var walk func(parent *delta.LiftedNode, path string, ctxs []interpCtx)
	walk = func(parent *delta.LiftedNode, path string, ctxs []interpCtx) {
		for _, n := range parent.Children {
			childPath := path + "/" + n.Name

			// Decode this node's reg under every context × reg option,
			// fanning out per kind option. Presence conditions are
			// absolute, so n.Cond alone accounts for the whole ancestor
			// chain.
			regOpts := chosenOptions(n.Prop("reg"))
			kinds := kindOptions(n)
			for _, ro := range regOpts {
				if ro.value == nil {
					continue
				}
				for _, ictx := range ctxs {
					if ictx.sc <= 0 {
						continue
					}
					g0 := featmodel.AndOpt(n.Cond, featmodel.AndOpt(ictx.cond, ro.cond))
					entries, err := addr.ParseReg(ro.value.U32s(), ictx.ac, ictx.sc)
					if err != nil {
						r.emit("semantic", g0, Violation{
							Rule:    "semantic:regions",
							Message: fmt.Sprintf("%s: %v", childPath, err),
						})
					}
					for i, e := range entries {
						base, ok := ictx.translate(e.Address, e.Size)
						if !ok {
							r.emit("semantic", g0, Violation{
								Rule: "semantic:regions",
								Message: fmt.Sprintf("%s bank %d: address 0x%x not covered by parent ranges",
									childPath, i, e.Address),
							})
							continue
						}
						rg := addr.Region{
							Base: base, Size: e.Size,
							Path: childPath, Index: i,
							Origin: ro.origin,
						}
						if _, ok := rg.End(); !ok {
							r.emit("semantic", g0, Violation{
								Rule:    "semantic:regions",
								Message: fmt.Sprintf("%s bank %d: %v", childPath, i, addr.ErrOverflow),
							})
						}
						for _, ko := range kinds {
							rk := rg
							rk.Kind = ko.kind
							out = append(out, liftedRegion{
								reg:   rk,
								cond:  featmodel.AndOpt(g0, ko.cond),
								width: ictx.width,
							})
						}
					}
				}
			}

			// Compose the child contexts: each parent context splits on
			// this node's #address-cells, #size-cells and ranges
			// options.
			acOpts := cellOptions(n, "#address-cells", 2)
			scOpts := cellOptions(n, "#size-cells", 1)
			rOpts := chosenOptions(n.Prop("ranges"))
			var childCtxs []interpCtx
			for _, ictx := range ctxs {
				for _, acO := range acOpts {
					for _, scO := range scOpts {
						for _, rO := range rOpts {
							cond := featmodel.AndOpt(ictx.cond,
								featmodel.AndOpt(acO.cond, featmodel.AndOpt(scO.cond, rO.cond)))
							tr := ictx.translate
							if rO.value != nil && !rO.value.IsEmpty() {
								entries, err := addr.ParseRanges(rO.value.U32s(), acO.n, ictx.ac, scO.n)
								if err != nil {
									r.emit("semantic", featmodel.AndOpt(n.Cond, cond), Violation{
										Rule:    "semantic:regions",
										Message: fmt.Sprintf("%s ranges: %v", childPath, err),
									})
								} else {
									upper := ictx.translate
									es := entries
									tr = func(a, s uint64) (uint64, bool) {
										mid, ok := addr.Translate(es, a, s)
										if !ok {
											return 0, false
										}
										return upper(mid, s)
									}
								}
							}
							childCtxs = append(childCtxs, interpCtx{
								cond: cond, ac: acO.n, sc: scO.n,
								width: ictx.width, translate: tr,
							})
						}
					}
				}
			}
			// Most cross-property guard combinations are mutually
			// unsatisfiable (e.g. "veth0 chose this ac" ∧ "veth1 chose
			// that sc" under an XOR group); prune them through the
			// session before the cap so reachable contexts are never
			// sacrificed to unreachable ones.
			if len(childCtxs) > 1 {
				kept := childCtxs[:0]
				for _, c := range childCtxs {
					if ok, _ := r.reachable(featmodel.AndOpt(n.Cond, c.cond)); ok {
						kept = append(kept, c)
					}
				}
				childCtxs = kept
			}
			if len(childCtxs) > maxInterpContexts {
				r.emit("semantic", n.Cond, Violation{
					Path: childPath,
					Rule: "lifted:interp-contexts",
					Message: fmt.Sprintf(
						"%d interpretation contexts exceed the lifted cap (%d); semantic coverage below this node is truncated",
						len(childCtxs), maxInterpContexts),
				})
				childCtxs = childCtxs[:maxInterpContexts]
			}
			r.lc.stats.Contexts += len(childCtxs)
			walk(n, childPath, childCtxs)
		}
	}
	walk(lt.Root, "", rootCtxs)
	return rootACs, out
}

// semantic runs the lifted non-overlap family (formula (7)): the word
// tier decides every candidate pair's geometry exactly — the variants
// are concrete — and only geometrically colliding pairs cost a lifted
// reachability query. Cross-width pairs come from mutually exclusive
// root cell interpretations and are skipped statically.
func (r *liftedRun) semantic(regions []liftedRegion) {
	for i := 0; i < len(regions); i++ {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.width != b.width {
				continue
			}
			if !eligiblePair(a.reg, b.reg, r.lc.CheckMemoryBanks) {
				continue
			}
			overlap, witness := DecideConcretePair(a.reg, b.reg, a.width)
			r.lc.stats.WordDecided++
			if !overlap {
				continue
			}
			cond := featmodel.AndOpt(a.cond, b.cond)
			ok, cfg := r.reachable(cond)
			if !ok {
				continue
			}
			col := Collision{A: a.reg, B: b.reg, Witness: witness}
			for _, v := range col.Violations() {
				r.emitWith(cfg, "semantic", v)
			}
		}
	}
}

// schemaFamily runs the lifted syntactic family: every node is checked
// in each of its "worlds" — one concrete combination of chosen property
// options (and the parent's cell properties, which the reg-like arity
// rules read) — against the schemas selecting that world's node shape.
// Unreachable worlds are pruned by one Unsat each before any SMT work.
func (r *liftedRun) schemaFamily(lt *delta.LiftedTree) {
	if r.lc.Schemas == nil {
		return
	}
	var rec func(parent *delta.LiftedNode, path string)
	rec = func(parent *delta.LiftedNode, path string) {
		pAc := cellOptions(parent, "#address-cells", 2)
		pSc := cellOptions(parent, "#size-cells", 1)
		for _, n := range parent.Children {
			childPath := path + "/" + n.Name
			r.schemaNode(n, childPath, pAc, pSc)
			if r.err != nil {
				return
			}
			rec(n, childPath)
		}
	}
	rec(lt.Root, "")
}

func (r *liftedRun) schemaNode(n *delta.LiftedNode, path string, pAc, pSc []cellOption) {
	type world struct {
		cond  *featmodel.Expr
		props []*dts.Property
	}
	worlds := []world{{}}
	truncated := false
	for _, lp := range n.Props {
		opts := chosenOptions(lp)
		if len(worlds)*len(opts) > maxSchemaWorlds {
			truncated = true
			break
		}
		next := make([]world, 0, len(worlds)*len(opts))
		for _, w := range worlds {
			for _, o := range opts {
				nw := world{cond: featmodel.AndOpt(w.cond, o.cond), props: w.props}
				if o.value != nil {
					nw.props = append(w.props[:len(w.props):len(w.props)], &dts.Property{
						Name: lp.Name, Value: o.value.Clone(), Origin: o.origin,
					})
				}
				next = append(next, nw)
			}
		}
		worlds = next
		// Prune unsatisfiable option combinations through the session
		// before the blowup check, like the interpretation contexts.
		if len(worlds) > 8 {
			kept := worlds[:0]
			for _, w := range worlds {
				if ok, _ := r.reachable(featmodel.AndOpt(n.Cond, w.cond)); ok {
					kept = append(kept, w)
				}
			}
			worlds = kept
		}
	}
	if truncated {
		r.emit("schema", n.Cond, Violation{
			Path: path,
			Rule: "lifted:schema-worlds",
			Message: fmt.Sprintf(
				"property variant combinations exceed the lifted world cap (%d); schema coverage of this node is truncated",
				maxSchemaWorlds),
		})
	}
	for _, w := range worlds {
		cond := featmodel.AndOpt(n.Cond, w.cond)
		if ok, _ := r.reachable(cond); !ok {
			continue
		}
		r.lc.stats.Worlds++
		node := &dts.Node{Name: n.Name, Origin: n.Origin, Properties: w.props}
		schemas := r.lc.Schemas.For(node)
		if len(schemas) == 0 {
			continue
		}
		for _, pa := range pAc {
			for _, ps := range pSc {
				wcond := featmodel.AndOpt(cond, featmodel.AndOpt(pa.cond, ps.cond))
				parent := parentShell(pa.n, ps.n)
				for _, sc := range schemas {
					vs, err := checkNodeSyntax(r.ctx, node, parent, path, sc)
					for _, v := range vs {
						r.emit("schema", wcond, v)
					}
					if err != nil {
						r.err = err
						return
					}
				}
			}
		}
	}
}

// parentShell builds the minimal concrete parent node checkNodeSyntax
// needs: its cell-size properties, which reg-like arity rules consult.
func parentShell(ac, sc int) *dts.Node {
	cells := func(v int) dts.Value {
		return dts.Value{Chunks: []dts.Chunk{{Kind: dts.ChunkCells, CellList: []dts.Cell{{Val: uint32(v)}}}}}
	}
	return &dts.Node{Name: "parent", Properties: []*dts.Property{
		{Name: "#address-cells", Value: cells(ac)},
		{Name: "#size-cells", Value: cells(sc)},
	}}
}

// interrupts runs the lifted interrupt-uniqueness family: guarded
// (path, line) claims, equal lines on distinct nodes cost one
// reachability query each. Equality of two concrete cells is decided
// in place — the concrete checker's per-pair SMT query over two
// constants is exactly an equality test.
func (r *liftedRun) interrupts(lt *delta.LiftedTree) {
	type irqUse struct {
		path   string
		irq    uint32
		cond   *featmodel.Expr
		origin dts.Origin
	}
	var uses []irqUse
	lt.Root.Walk(func(path string, n *delta.LiftedNode) bool {
		for _, o := range chosenOptions(n.Prop("interrupts")) {
			if o.value == nil {
				continue
			}
			cond := featmodel.AndOpt(n.Cond, o.cond)
			for _, cell := range o.value.Cells() {
				uses = append(uses, irqUse{path: path, irq: cell.Val, cond: cond, origin: o.origin})
			}
		}
		return true
	})
	for i := 0; i < len(uses); i++ {
		for j := i + 1; j < len(uses); j++ {
			if uses[i].path == uses[j].path || uses[i].irq != uses[j].irq {
				continue
			}
			r.emit("interrupt", featmodel.AndOpt(uses[i].cond, uses[j].cond), Violation{
				Path: uses[i].path, Property: "interrupts",
				Rule: "semantic:interrupt",
				Message: fmt.Sprintf("interrupt %d also claimed by %s",
					uses[i].irq, uses[j].path),
				Origin: uses[i].origin,
			})
		}
	}
}

// memreserve runs the lifted /memreserve/ family. Reserves live in the
// core (deltas cannot edit them), so reserve-vs-reserve disjointness is
// configuration-independent geometry, checked by the word tier per
// root-width option. Containment is configuration-dependent — the set
// of memory banks varies — and is checked exactly with the candidate
// point construction: a reserve has an uncovered address under some
// active bank set iff one of {reserve.lo} ∪ {bank ends} is uncovered,
// so each candidate point costs one lifted query asking whether a valid
// configuration deactivates every bank containing it.
func (r *liftedRun) memreserve(lt *delta.LiftedTree, rootACs []cellOption, regions []liftedRegion) {
	if len(lt.MemReserves) == 0 {
		return
	}
	for _, acO := range rootACs {
		width := addr.BitWidth(acO.n)

		var banks []liftedRegion
		for _, lr := range regions {
			if lr.reg.Kind == addr.KindMemory && lr.width == width {
				banks = append(banks, lr)
			}
		}

		// Containment: for each reserve, probe the candidate points.
		for i, mr := range lt.MemReserves {
			reserve := addr.Region{Base: mr.Address, Size: mr.Size}
			riv, ok := regionInterval(reserve, width)
			if !ok {
				continue // empty reserve constrains nothing
			}
			inReserve := func(p uint64) bool {
				return p >= riv.lo && (riv.top || p < riv.hi)
			}
			points := []uint64{riv.lo}
			for _, b := range banks {
				if biv, ok := regionInterval(b.reg, width); ok && !biv.top && inReserve(biv.hi) {
					points = append(points, biv.hi)
				}
			}
			sort.Slice(points, func(a, b int) bool { return points[a] < points[b] })
			probed := make(map[uint64]bool)
			for _, p := range points {
				if probed[p] {
					continue
				}
				probed[p] = true
				// All banks containing p must be inactive for p to be
				// uncovered; an unconditional containing bank covers it
				// in every configuration.
				var cond *featmodel.Expr
				covered := false
				for _, b := range banks {
					biv, ok := regionInterval(b.reg, width)
					if !ok || p < biv.lo || (!biv.top && p >= biv.hi) {
						continue
					}
					if b.cond == nil {
						covered = true
						break
					}
					cond = featmodel.AndOpt(cond, featmodel.Not(b.cond))
				}
				if covered {
					continue
				}
				cond = featmodel.AndOpt(acO.cond, cond)
				r.emit("memreserve", cond, Violation{
					Rule: "semantic:memreserve-outside-ram",
					Message: fmt.Sprintf(
						"/memreserve/ %d (0x%x+0x%x) covers address 0x%x outside every memory bank",
						i, mr.Address, mr.Size, p),
				})
			}
		}

		// Pairwise disjointness of reserves: pure geometry per width.
		for i := 0; i < len(lt.MemReserves); i++ {
			for j := i + 1; j < len(lt.MemReserves); j++ {
				a := addr.Region{Base: lt.MemReserves[i].Address, Size: lt.MemReserves[i].Size}
				b := addr.Region{Base: lt.MemReserves[j].Address, Size: lt.MemReserves[j].Size}
				overlap, witness := DecideConcretePair(a, b, width)
				r.lc.stats.WordDecided++
				if !overlap {
					continue
				}
				r.emit("memreserve", acO.cond, Violation{
					Rule: "semantic:memreserve-overlap",
					Message: fmt.Sprintf("/memreserve/ %d and %d overlap at address 0x%x",
						i, j, witness),
				})
			}
		}
	}
}
