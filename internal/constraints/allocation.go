package constraints

import (
	"context"
	"errors"
	"fmt"

	"llhsc/internal/featmodel"
	"llhsc/internal/sat"
)

// AllocationChecker enforces the resource-allocation constraints of
// Section IV-A: every VM's configuration must be a valid product of the
// shared feature model, and features marked Exclusive (CPUs under
// static partitioning) may be selected by at most one VM.
type AllocationChecker struct {
	Model *featmodel.Model
	VMs   int

	analyzer *featmodel.MultiAnalyzer
}

// NewAllocationChecker builds the multi-product encoding for k VMs.
func NewAllocationChecker(model *featmodel.Model, vms int) (*AllocationChecker, error) {
	mm, err := featmodel.NewMultiModel(model, vms)
	if err != nil {
		return nil, err
	}
	ma, err := featmodel.NewMultiAnalyzer(mm)
	if err != nil {
		return nil, err
	}
	return &AllocationChecker{
		Model:    model,
		VMs:      vms,
		analyzer: ma,
	}, nil
}

// Check validates the per-VM configurations. A nil return means the
// partitioning is valid; otherwise the violations identify the
// conflicting feature literals.
func (c *AllocationChecker) Check(configs []featmodel.Configuration) []Violation {
	out, _ := c.CheckContext(context.Background(), configs)
	return out
}

// CheckContext is Check under a context: a budget or cancellation stop
// is returned as a *sat.LimitError instead of being folded into the
// violation list, so callers can distinguish "invalid" from "unknown".
func (c *AllocationChecker) CheckContext(ctx context.Context, configs []featmodel.Configuration) ([]Violation, error) {
	err := c.analyzer.CheckConfigsContext(ctx, configs)
	if err == nil {
		return nil, nil
	}
	var lim *sat.LimitError
	if errors.As(err, &lim) {
		return nil, lim
	}
	if ce, ok := err.(*featmodel.ConflictError); ok {
		return []Violation{{
			Rule: "allocation:conflict",
			Message: fmt.Sprintf("invalid static partitioning; conflicting selections: %v",
				ce.Literals),
		}}, nil
	}
	return []Violation{{
		Rule:    "allocation:error",
		Message: err.Error(),
	}}, nil
}

// SetBudget installs a resource budget on the underlying solver,
// bounding every subsequent check.
func (c *AllocationChecker) SetBudget(b sat.Budget) { c.analyzer.SetBudget(b) }

// Stats returns a snapshot of the multi-product solver's cumulative
// SAT statistics; use sat.Stats.Sub over two snapshots for the work of
// one CheckContext call.
func (c *AllocationChecker) Stats() sat.Stats { return c.analyzer.Stats() }

// Feasible reports whether any assignment of products to the VMs exists
// (false exactly when the paper's VM bound is exceeded, e.g. three VMs
// over two exclusive CPUs).
func (c *AllocationChecker) Feasible() bool {
	return !c.analyzer.IsVoid()
}

// Solve delegates to the multi-analyzer to complete partial per-VM pins
// into full configurations (automatic CPU assignment, Fig. 1's
// grayed-out features).
func (c *AllocationChecker) Solve(pins []map[string]bool) ([]featmodel.Configuration, error) {
	return c.analyzer.SolveAssignment(pins)
}
