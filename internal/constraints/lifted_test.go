package constraints

// Cross-validation of family-based lifted checking against the
// enumerative pipeline: for every corpus (the paper's running example,
// the E6 truncation corpus, randomized conform product lines) the
// lifted checker must find everything per-product enumeration finds
// (completeness), and every lifted finding's decoded witness
// configuration must be a real product that concretely exhibits the
// violation (soundness). Verdicts — "the product line is clean" — must
// agree exactly.

import (
	"strings"
	"testing"

	"llhsc/internal/addr"
	"llhsc/internal/conform"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
	"llhsc/internal/schema"
)

// famKeys maps family name → set of violation keys.
type famKeys map[string]map[string]bool

func (fk famKeys) add(family, key string) {
	if fk[family] == nil {
		fk[family] = make(map[string]bool)
	}
	fk[family][key] = true
}

func (fk famKeys) has(family, key string) bool { return fk[family][key] }

func (fk famKeys) empty() bool {
	for _, s := range fk {
		if len(s) > 0 {
			return false
		}
	}
	return true
}

// memreserveKey strips the solver-dependent witness address from a
// memreserve violation message: the enumerative checker reports an
// arbitrary model value where the lifted checker reports a canonical
// probe point, so only the structural part is comparable.
func memreserveKey(rule, message string) string {
	if i := strings.Index(message, " covers address"); i >= 0 {
		message = message[:i]
	}
	if i := strings.Index(message, " overlap at address"); i >= 0 {
		message = message[:i] + " overlap"
	}
	return rule + "|" + message
}

// enumerativeKeys runs every concrete family checker over one product
// tree and returns the violation key sets.
func enumerativeKeys(t *testing.T, tree *dts.Tree, schemas *schema.Set) famKeys {
	t.Helper()
	keys := make(famKeys)

	sc := NewSemanticChecker()
	_, violations := sc.Check(tree)
	for _, v := range violations {
		switch v.Rule {
		case "semantic:overlap":
			keys.add("semantic-overlap", v.Path+"|"+v.Message)
		case "semantic:regions":
			keys.add("semantic-regions", v.Message)
		}
	}

	for _, v := range NewSyntacticChecker(schemas).Check(tree) {
		keys.add("schema", v.Path+"|"+v.Property+"|"+v.Rule+"|"+v.Message)
	}
	for _, v := range (InterruptChecker{}).Check(tree) {
		keys.add("interrupt", v.Path+"|"+v.Message)
	}
	for _, v := range (MemReserveChecker{}).Check(tree) {
		keys.add("memreserve", memreserveKey(v.Rule, v.Message))
	}
	return keys
}

// liftedKeys classifies lifted findings into the same key space.
func liftedKeys(t *testing.T, findings []LiftedFinding) famKeys {
	t.Helper()
	keys := make(famKeys)
	for _, f := range findings {
		v := f.Violation
		switch {
		case f.Family == "semantic" && v.Rule == "semantic:overlap":
			keys.add("semantic-overlap", v.Path+"|"+v.Message)
		case f.Family == "semantic" && v.Rule == "semantic:regions":
			keys.add("semantic-regions", v.Message)
		case v.Rule == "lifted:interp-contexts" || v.Rule == "lifted:schema-worlds":
			t.Errorf("corpus unexpectedly hit a lifted coverage cap: %s", f)
		case f.Family == "schema":
			keys.add("schema", v.Path+"|"+v.Property+"|"+v.Rule+"|"+v.Message)
		case f.Family == "interrupt":
			keys.add("interrupt", v.Path+"|"+v.Message)
		case f.Family == "memreserve":
			keys.add("memreserve", memreserveKey(v.Rule, v.Message))
		case f.Family == "apply":
			keys.add("apply", v.Path+"|"+v.Message)
		default:
			t.Errorf("lifted finding with unknown family %q: %s", f.Family, f)
		}
	}
	return keys
}

func productKey(names []string) string {
	cp := append([]string(nil), names...)
	for i := 1; i < len(cp); i++ { // insertion sort; inputs are tiny
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return strings.Join(cp, ",")
}

// crossValidate is the harness: enumerate all products, check each
// concretely, lift once, and compare.
func crossValidate(t *testing.T, label string, core *dts.Tree, set *delta.Set, model *featmodel.Model, schemas *schema.Set) {
	t.Helper()

	products, complete := featmodel.NewAnalyzer(model).EnumerateProducts(0)
	if !complete {
		t.Fatalf("%s: product enumeration incomplete", label)
	}

	lifted, err := set.Lift(core)
	if err != nil {
		t.Fatalf("%s: lift: %v", label, err)
	}
	lc := NewLiftedChecker(model, schemas)
	findings, cerr := lc.CheckContext(t.Context(), lifted)
	if cerr != nil {
		t.Fatalf("%s: lifted check: %v", label, cerr)
	}
	lKeys := liftedKeys(t, findings)

	// Enumerative arm: per-product key sets plus apply failures.
	perProduct := make(map[string]famKeys)
	regionsErr := make(map[string]bool)
	applyFails := make(map[string]bool)
	anyViolation := false
	for _, p := range products {
		cfg := featmodel.ConfigOf(p...)
		pk := productKey(p)
		tree, _, aerr := set.Apply(core, cfg)
		if aerr != nil {
			applyFails[pk] = true
			anyViolation = true
			continue
		}
		keys := enumerativeKeys(t, tree, schemas)
		perProduct[pk] = keys
		if _, rerr := addr.CollectRegions(tree); rerr != nil {
			regionsErr[pk] = true
		}
		if !keys.empty() {
			anyViolation = true
		}

		// Completeness: every enumerative violation must appear in the
		// lifted result (same key).
		for family, ks := range keys {
			for key := range ks {
				if !lKeys.has(family, key) {
					t.Errorf("%s: product %v: enumerative %s violation missing from lifted result: %s",
						label, cfg.Sorted(), family, key)
				}
			}
		}
	}
	if len(applyFails) > 0 && len(lKeys["apply"]) == 0 {
		t.Errorf("%s: %d products fail delta application but lifted reports no apply conflict",
			label, len(applyFails))
	}

	// Soundness: each lifted finding's decoded witness must be a valid
	// product exhibiting the violation. Witnesses that land on
	// apply-broken products (possible in randomized corpora, where the
	// merged value at a double-add is don't-care) are excused — the
	// enumerative semantics of such products is undefined.
	for _, f := range findings {
		pk := productKey(f.Config.Sorted())
		if !applyFails[pk] {
			if _, ok := perProduct[pk]; !ok {
				t.Errorf("%s: finding %s: decoded config is not a valid product", label, f)
				continue
			}
		}
		if len(lifted.ActiveConflicts(f.Config)) > 0 {
			if f.Family != "apply" && !applyFails[pk] {
				t.Errorf("%s: finding %s: lifted conflicts active but product applies cleanly", label, f)
			}
			continue
		}
		keys := perProduct[pk]
		v := f.Violation
		switch {
		case f.Family == "apply":
			t.Errorf("%s: apply finding %s: witness product applies cleanly", label, f)
		case f.Family == "semantic" && v.Rule == "semantic:regions":
			if !regionsErr[pk] {
				t.Errorf("%s: finding %s: witness product has no region-decoding error", label, f)
			}
		case f.Family == "semantic":
			if !keys.has("semantic-overlap", v.Path+"|"+v.Message) {
				t.Errorf("%s: finding %s: not reproduced by concrete semantic check of witness product", label, f)
			}
		case f.Family == "schema":
			if !keys.has("schema", v.Path+"|"+v.Property+"|"+v.Rule+"|"+v.Message) {
				t.Errorf("%s: finding %s: not reproduced by concrete schema check of witness product", label, f)
			}
		case f.Family == "interrupt":
			if !keys.has("interrupt", v.Path+"|"+v.Message) {
				t.Errorf("%s: finding %s: not reproduced by concrete interrupt check of witness product", label, f)
			}
		case f.Family == "memreserve":
			if !keys.has("memreserve", memreserveKey(v.Rule, v.Message)) {
				t.Errorf("%s: finding %s: not reproduced by concrete memreserve check of witness product", label, f)
			}
		}
	}

	// Verdict equivalence: clean family-wide iff clean per product.
	if (len(findings) == 0) != !anyViolation {
		t.Errorf("%s: verdict mismatch: lifted reports %d findings, enumeration found violations: %v",
			label, len(findings), anyViolation)
	}
}

func TestLiftedMatchesEnumerativeRunningExample(t *testing.T) {
	core, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	set, err := runningexample.Deltas()
	if err != nil {
		t.Fatal(err)
	}
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	crossValidate(t, "running-example", core, set, model, schema.StandardSet())
}

// TestLiftedMatchesEnumerativeE6 repeats the comparison on the paper's
// truncation corpus (delta d4 omitted), whose products exhibit a
// four-bank memory layout with a collision at 0x0.
func TestLiftedMatchesEnumerativeE6(t *testing.T) {
	core, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	set, err := runningexample.Deltas()
	if err != nil {
		t.Fatal(err)
	}
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	var kept []*delta.Delta
	for _, d := range set.Deltas {
		if d.Name != "d4" {
			kept = append(kept, d)
		}
	}
	smaller, err := delta.NewSet(kept)
	if err != nil {
		t.Fatal(err)
	}
	crossValidate(t, "e6", core, smaller, model, schema.StandardSet())

	// The E6 corpus is the collision corpus: the lifted run must
	// actually find overlaps, not vacuously agree on emptiness.
	lifted, err := smaller.Lift(core)
	if err != nil {
		t.Fatal(err)
	}
	lc := NewLiftedChecker(model, schema.StandardSet())
	findings, err := lc.CheckContext(t.Context(), lifted)
	if err != nil {
		t.Fatal(err)
	}
	overlaps := 0
	for _, f := range findings {
		if f.Violation.Rule == "semantic:overlap" {
			overlaps++
		}
	}
	if overlaps == 0 {
		t.Error("e6: lifted check found no overlap violations on the collision corpus")
	}
}

// conformModel is the feature model of the conform generator's space:
// three independent optional features.
func conformModel(t *testing.T) *featmodel.Model {
	t.Helper()
	root := &featmodel.Feature{Name: "root", Abstract: true, Group: featmodel.GroupAnd}
	for _, f := range conform.Features {
		root.Children = append(root.Children, &featmodel.Feature{Name: f, Group: featmodel.GroupAnd})
	}
	m, err := featmodel.NewModel(root)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestLiftedMatchesEnumerativeConform cross-validates over randomized
// conform product lines: every generated delta set, all 8
// configurations of the 3-feature space.
func TestLiftedMatchesEnumerativeConform(t *testing.T) {
	model := conformModel(t)
	cases := 0
	for seed := int64(0); seed < 30; seed++ {
		c := conform.GenerateCase(seed)
		if c.Deltas == "" {
			continue
		}
		core, err := conform.ParseOracle("gen.dts", c.Source)
		if err != nil {
			t.Fatalf("seed %d: core does not parse: %v", seed, err)
		}
		set, err := delta.Parse("gen.deltas", c.Deltas)
		if err != nil {
			t.Fatalf("seed %d: deltas do not parse: %v", seed, err)
		}
		crossValidate(t, "conform-"+string(rune('0'+seed%10))+"-seed", core, set, model, schema.StandardSet())
		cases++
	}
	if cases < 20 {
		t.Fatalf("only %d conform corpora ran; generator drift?", cases)
	}
}

// TestLiftedStatsAccounting pins the observability contract: queries
// counted, word tier engaged, session shared.
func TestLiftedStatsAccounting(t *testing.T) {
	core, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	set, err := runningexample.Deltas()
	if err != nil {
		t.Fatal(err)
	}
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := set.Lift(core)
	if err != nil {
		t.Fatal(err)
	}
	lc := NewLiftedChecker(model, schema.StandardSet())
	if _, err := lc.CheckContext(t.Context(), lifted); err != nil {
		t.Fatal(err)
	}
	st := lc.LastStats()
	if st.Queries == 0 {
		t.Error("lifted check issued no SAT queries")
	}
	if st.WordDecided == 0 {
		t.Error("word tier decided no pairs on the running example")
	}
	if st.Regions == 0 {
		t.Error("no lifted regions collected")
	}
}
