// Package constraints implements llhsc's three constraint families
// (Section IV of the paper), all discharged by the SMT solver in
// internal/smt:
//
//   - resource-allocation constraints over multi-product feature models
//     (Section IV-A; thin veneer over internal/featmodel),
//   - syntactic constraints derived from dt-schema-style binding
//     schemas, encoded as the axioms (1)–(3) and proof obligations
//     (4)–(6) of Section IV-B,
//   - semantic constraints: bit-vector non-overlap of address regions
//     with counterexample extraction (Section IV-C, formula (7)).
//
// Violations carry blame: the delta module that produced the offending
// node or property (via dts.Origin.Delta), realizing the traceability
// goal of Section III-B.
//
// # Concurrency contract
//
// Checker values are cheap façades over an smt.Context + smt.Solver
// built fresh inside each Check call, so a single checker value may be
// used from multiple goroutines as long as each call gets its own
// stack: Check/CheckContext never share solver state across calls. The
// parallel pipeline in internal/core still constructs one checker set
// per worker for clarity, but the hard requirement is only the one
// documented on smt.Solver — never drive one Solver from two
// goroutines. Schema sets and parsed trees are read-only during
// checking and safe to share. The exception is
// IncrementalSemanticChecker, which owns a long-lived solver and is
// single-goroutine by design.
package constraints

import (
	"context"
	"fmt"
	"sort"

	"llhsc/internal/dts"
	"llhsc/internal/sat"
	"llhsc/internal/schema"
	"llhsc/internal/smt"
)

// Violation is one constraint-check failure.
type Violation struct {
	Path     string // node path
	Property string // offending property, if known
	Rule     string // identifier of the violated rule
	Message  string
	Origin   dts.Origin // includes the responsible delta, if any
}

func (v Violation) String() string {
	b := v.Path
	if v.Property != "" {
		b += " property " + v.Property
	}
	b += ": " + v.Message
	if v.Rule != "" {
		b += " [" + v.Rule + "]"
	}
	if v.Origin.Delta != "" {
		b += " (introduced by delta " + v.Origin.Delta + ")"
	}
	return b
}

// SyntacticChecker verifies DT bindings against binding schemas by
// encoding schema axioms and instance proof obligations as an SMT
// problem, following Section IV-B:
//
//   - presence predicates R(x) become one Boolean variable per
//     (node, property-name) pair,
//   - the binding instance contributes the closure C(x) ↔ x present
//     and the equations val(p) = "literal" (constraints (4)–(6)),
//   - each schema contributes required-property axioms node → R(p),
//     value axioms R(p) → val(p) = const / enum (constraints (1)–(3)),
//     and the arity rules for reg-like arrays as ground facts.
//
// Unsatisfiability pinpoints the violated axioms via named assertions;
// violated schema rules are then disabled and the node re-checked so
// that every independent violation is reported.
type SyntacticChecker struct {
	Schemas *schema.Set
}

// NewSyntacticChecker returns a checker over the given schema set.
func NewSyntacticChecker(set *schema.Set) *SyntacticChecker {
	return &SyntacticChecker{Schemas: set}
}

// Check verifies the whole tree and returns all violations in
// deterministic order.
func (c *SyntacticChecker) Check(tree *dts.Tree) []Violation {
	out, _ := c.CheckContext(context.Background(), tree)
	return out
}

// CheckContext is Check under a context; a non-nil error (a
// *sat.LimitError) means cancellation cut the tree walk short, and the
// violations found so far are still returned.
func (c *SyntacticChecker) CheckContext(ctx context.Context, tree *dts.Tree) ([]Violation, error) {
	var out []Violation
	var werr error
	var walk func(parent *dts.Node, path string) bool
	walk = func(parent *dts.Node, path string) bool {
		for _, n := range parent.Children {
			childPath := path + "/" + n.Name
			for _, sc := range c.Schemas.For(n) {
				vs, err := checkNodeSyntax(ctx, n, parent, childPath, sc)
				out = append(out, vs...)
				if err != nil {
					werr = err
					return false
				}
			}
			if !walk(n, childPath) {
				return false
			}
		}
		return true
	}
	walk(tree.Root, "")
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		if out[i].Property != out[j].Property {
			return out[i].Property < out[j].Property
		}
		return out[i].Rule < out[j].Rule
	})
	return out, werr
}

// schemaRule is one named schema axiom with its diagnosis.
type schemaRule struct {
	name     string
	property string
	message  string
	// assert adds the axiom to a freshly built solver.
	assert func(ctx *smt.Context, solver *smt.Solver)
}

// checkNodeSyntax runs the Section IV-B encoding for one (node, schema)
// pair, iterating unsat cores to surface every independent violation.
func checkNodeSyntax(ctx context.Context, n, parent *dts.Node, path string, sc *schema.Schema) ([]Violation, error) {
	rules := buildSchemaRules(n, parent, sc)
	ruleByName := make(map[string]schemaRule, len(rules))
	for _, r := range rules {
		ruleByName[r.name] = r
	}

	disabled := make(map[string]bool)
	var out []Violation
	for iter := 0; iter <= len(rules); iter++ {
		sctx := smt.NewContext()
		solver := smt.NewSolver(sctx)
		assertBindingObligations(sctx, solver, n, sc)
		for _, r := range rules {
			if !disabled[r.name] {
				r.assert(sctx, solver)
			}
		}
		st, err := solver.CheckContext(ctx)
		if err != nil {
			return out, err
		}
		if st == sat.Sat {
			return out, nil
		}
		progressed := false
		for _, name := range solver.UnsatNames() {
			r, ok := ruleByName[name]
			if !ok || disabled[name] {
				continue
			}
			disabled[name] = true
			progressed = true
			origin := n.Origin
			if p := n.Property(r.property); p != nil {
				origin = p.Origin
			}
			out = append(out, Violation{
				Path: path, Property: r.property, Rule: r.name,
				Message: r.message, Origin: origin,
			})
		}
		if !progressed {
			out = append(out, Violation{
				Path: path, Rule: "internal",
				Message: fmt.Sprintf("unexplained inconsistency: %v", solver.UnsatNames()),
				Origin:  n.Origin,
			})
			return out, nil
		}
	}
	return out, nil
}

// assertBindingObligations adds constraints (4)–(6): the closure over
// present properties and the literal value equations.
func assertBindingObligations(ctx *smt.Context, solver *smt.Solver, n *dts.Node, sc *schema.Schema) {
	for _, name := range propertyUniverse(n, sc) {
		r := ctx.BoolVar("R:" + name)
		p := n.Property(name)
		if p == nil {
			solver.AssertNamed("binding:"+name, ctx.Not(r))
			continue
		}
		solver.AssertNamed("binding:"+name, r)
		if s := p.Value.Strings(); len(s) > 0 {
			solver.AssertNamed("binding:"+name+":value",
				ctx.Eq(ctx.StrVar("val:"+name), ctx.StrConst(s[0])))
		}
	}
	solver.Assert(ctx.BoolVar("node")) // the node was found
}

// propertyUniverse is the quantification domain for ∀x: schema
// properties plus instance properties, sorted.
func propertyUniverse(n *dts.Node, sc *schema.Schema) []string {
	set := make(map[string]bool, len(sc.Properties)+len(n.Properties))
	for name := range sc.Properties {
		set[name] = true
	}
	for _, p := range n.Properties {
		set[p.Name] = true
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// buildSchemaRules derives the named axioms (1)–(3) plus arity/type
// ground facts from the schema for the given node instance.
func buildSchemaRules(n, parent *dts.Node, sc *schema.Schema) []schemaRule {
	var rules []schemaRule
	add := func(name, property, message string, assert func(ctx *smt.Context, solver *smt.Solver)) {
		rules = append(rules, schemaRule{name: name, property: property, message: message, assert: assert})
	}

	for _, req := range sc.Required {
		req := req
		add(fmt.Sprintf("schema:%s:required:%s", sc.ID, req), req,
			"required property is missing",
			func(ctx *smt.Context, solver *smt.Solver) {
				solver.AssertNamed(fmt.Sprintf("schema:%s:required:%s", sc.ID, req),
					ctx.Implies(ctx.BoolVar("node"), ctx.BoolVar("R:"+req)))
			})
	}

	propNames := make([]string, 0, len(sc.Properties))
	for name := range sc.Properties {
		propNames = append(propNames, name)
	}
	sort.Strings(propNames)

	for _, name := range propNames {
		name := name
		ps := sc.Properties[name]
		p := n.Property(name)

		if ps.Const != "" {
			constVal := ps.Const
			rule := fmt.Sprintf("schema:%s:const:%s", sc.ID, name)
			add(rule, name, fmt.Sprintf("value does not match const %q", constVal),
				func(ctx *smt.Context, solver *smt.Solver) {
					solver.AssertNamed(rule, ctx.Implies(ctx.BoolVar("R:"+name),
						ctx.Eq(ctx.StrVar("val:"+name), ctx.StrConst(constVal))))
				})
		}
		if len(ps.Enum) > 0 {
			enum := ps.Enum
			rule := fmt.Sprintf("schema:%s:enum:%s", sc.ID, name)
			add(rule, name, fmt.Sprintf("value not in enum %v", enum),
				func(ctx *smt.Context, solver *smt.Solver) {
					alts := make([]*smt.Term, len(enum))
					for i, e := range enum {
						alts[i] = ctx.Eq(ctx.StrVar("val:"+name), ctx.StrConst(e))
					}
					solver.AssertNamed(rule, ctx.Implies(ctx.BoolVar("R:"+name), ctx.Or(alts...)))
				})
		}
		if p == nil {
			continue
		}

		// ground facts about the present property's shape
		cells := p.Value.U32s()
		items := len(cells)
		ground := func(kind, message string, ok bool) {
			rule := fmt.Sprintf("schema:%s:%s:%s", sc.ID, kind, name)
			add(rule, name, message, func(ctx *smt.Context, solver *smt.Solver) {
				solver.AssertNamed(rule, ctx.Bool(ok))
			})
		}
		if ps.RegLike {
			stride := parent.AddressCells() + parent.SizeCells()
			if stride == 0 {
				stride = 1
			}
			ground("arity", fmt.Sprintf("%d cells is not a multiple of #address-cells+#size-cells (%d)",
				len(cells), stride), len(cells)%stride == 0)
			items = len(cells) / stride
		}
		if ps.MinItems > 0 {
			ground("minItems", fmt.Sprintf("%d items, schema requires at least %d", items, ps.MinItems),
				items >= ps.MinItems)
		}
		if ps.MaxItems > 0 {
			ground("maxItems", fmt.Sprintf("%d items, schema allows at most %d", items, ps.MaxItems),
				items <= ps.MaxItems)
		}
		switch ps.Type {
		case schema.TypeU32:
			ground("u32", fmt.Sprintf("expected exactly one cell, found %d", len(cells)),
				len(cells) == 1)
		case schema.TypeString:
			ground("string", "expected a string value", len(p.Value.Strings()) > 0)
		case schema.TypeCells:
			ground("cells", "expected a cell array", len(cells) > 0)
		case schema.TypeBytes:
			ground("bytes", "expected a byte array", len(p.Value.Bytes()) > 0)
		case schema.TypeFlag:
			ground("flag", "expected an empty marker property", p.Value.IsEmpty())
		}
		if ps.Pattern != nil && len(p.Value.Strings()) > 0 {
			val := p.Value.Strings()[0]
			ground("pattern", fmt.Sprintf("value %q does not match pattern %s", val, ps.Pattern),
				ps.Pattern.MatchString(val))
		}
	}
	return rules
}
