package constraints

import (
	"context"
	"fmt"

	"llhsc/internal/addr"
	"llhsc/internal/dts"
	"llhsc/internal/sat"
	"llhsc/internal/smt"
)

// MemReserveChecker validates /memreserve/ entries with the same
// bit-vector machinery as the region checker (an extension in the
// spirit of Section IV-C: reserved ranges are boot-time contracts whose
// violation is only observable at runtime):
//
//   - every reserved range must lie entirely inside some memory bank
//     (reserving non-RAM addresses is meaningless and usually a typo),
//   - reserved ranges must not overlap each other.
type MemReserveChecker struct {
	// Width is the bit width for address variables; 0 derives it from
	// the tree's root #address-cells.
	Width int
	// Stats, when non-nil, receives the call's solver-work counters
	// (queries issued, SAT stats, intern hit rate). A pointer so the
	// checker stays usable as a value: MemReserveChecker{Stats: &st}.
	Stats *SemanticStats
}

// Check validates the tree's memreserve entries.
func (mc MemReserveChecker) Check(tree *dts.Tree) []Violation {
	out, _ := mc.CheckContext(context.Background(), tree)
	return out
}

// CheckContext is Check under a context; a non-nil error (a
// *sat.LimitError) means cancellation cut the checks short, and the
// violations found so far are still returned.
func (mc MemReserveChecker) CheckContext(ctx context.Context, tree *dts.Tree) ([]Violation, error) {
	if len(tree.MemReserves) == 0 {
		return nil, nil
	}
	width := mc.Width
	if width == 0 {
		width = addr.BitWidth(tree.Root.AddressCells())
	}
	regions, _ := addr.CollectRegions(tree)
	var banks []addr.Region
	for _, r := range regions {
		if r.Kind == addr.KindMemory {
			banks = append(banks, r)
		}
	}

	sctx := smt.NewContext()
	solver := smt.NewSolver(sctx)
	if mc.Stats != nil {
		defer func() { mc.Stats.absorb(solver) }()
	}
	x := sctx.BVVar("x", width)

	var out []Violation

	// containment: ∃x inside the reserve but outside every bank → violation
	for i, mr := range tree.MemReserves {
		reserve := addr.Region{Base: mr.Address, Size: mr.Size}
		solver.Push()
		solver.Assert(overlapTerm(sctx, x, reserve, width))
		for _, b := range banks {
			solver.Assert(sctx.Not(overlapTerm(sctx, x, b, width)))
		}
		st, err := solver.CheckContext(ctx)
		if mc.Stats != nil {
			mc.Stats.SolverCalls++
		}
		if st == sat.Sat {
			out = append(out, Violation{
				Rule: "semantic:memreserve-outside-ram",
				Message: fmt.Sprintf(
					"/memreserve/ %d (0x%x+0x%x) covers address 0x%x outside every memory bank",
					i, mr.Address, mr.Size, solver.BVValue(x)),
			})
		}
		solver.Pop()
		if err != nil {
			return out, err
		}
	}

	// pairwise disjointness of reserves
	for i := 0; i < len(tree.MemReserves); i++ {
		for j := i + 1; j < len(tree.MemReserves); j++ {
			a := addr.Region{Base: tree.MemReserves[i].Address, Size: tree.MemReserves[i].Size}
			b := addr.Region{Base: tree.MemReserves[j].Address, Size: tree.MemReserves[j].Size}
			solver.Push()
			solver.Assert(overlapTerm(sctx, x, a, width))
			solver.Assert(overlapTerm(sctx, x, b, width))
			st, err := solver.CheckContext(ctx)
			if mc.Stats != nil {
				mc.Stats.SolverCalls++
				mc.Stats.Pairs++
			}
			if st == sat.Sat {
				out = append(out, Violation{
					Rule: "semantic:memreserve-overlap",
					Message: fmt.Sprintf(
						"/memreserve/ %d and %d overlap at address 0x%x",
						i, j, solver.BVValue(x)),
				})
			}
			solver.Pop()
			if err != nil {
				return out, err
			}
		}
	}
	return out, nil
}
