package constraints

import (
	"fmt"
	"math/rand"
	"testing"

	"llhsc/internal/dts"
	"llhsc/internal/schema"
)

// TestSyntacticCheckerAgreesWithBaseline cross-validates the two
// implementations of Section IV-B: on purely structural faults, the
// SMT-encoded checker and the direct structural validator must agree on
// whether a node violates its schema (they may differ in message
// wording, not in verdicts).
func TestSyntacticCheckerAgreesWithBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	set := schema.StandardSet()
	smtChecker := NewSyntacticChecker(set)

	for iter := 0; iter < 120; iter++ {
		tree := randomMemoryNode(rng)
		baseline := set.Validate(tree)
		viaSMT := smtChecker.Check(tree)

		baselineProps := violationProps(t, baseline)
		smtProps := make(map[string]bool)
		for _, v := range viaSMT {
			smtProps[v.Property] = true
		}

		if (len(baseline) > 0) != (len(viaSMT) > 0) {
			t.Fatalf("iter %d: verdicts disagree: baseline=%v smt=%v\n%s",
				iter, baseline, viaSMT, tree.Print())
		}
		// both must implicate the same properties
		for p := range baselineProps {
			if !smtProps[p] {
				t.Errorf("iter %d: baseline flags %q but the SMT checker does not\nbaseline=%v smt=%v",
					iter, p, baseline, viaSMT)
			}
		}
		for p := range smtProps {
			if !baselineProps[p] {
				t.Errorf("iter %d: SMT checker flags %q but the baseline does not\nbaseline=%v smt=%v",
					iter, p, baseline, viaSMT)
			}
		}
	}
}

func violationProps(t *testing.T, vs []schema.Violation) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	for _, v := range vs {
		out[v.Property] = true
	}
	return out
}

// randomMemoryNode builds a memory node with randomized structural
// faults: possibly missing device_type, wrong const, bad arity, or
// fully correct.
func randomMemoryNode(rng *rand.Rand) *dts.Tree {
	tree := dts.NewTree()
	tree.Root.SetProperty(&dts.Property{Name: "#address-cells", Value: dts.CellsValue(1)})
	tree.Root.SetProperty(&dts.Property{Name: "#size-cells", Value: dts.CellsValue(1)})
	mem := tree.Root.EnsureChild(fmt.Sprintf("memory@%x", 0x40000000))

	switch rng.Intn(3) {
	case 0:
		mem.SetProperty(&dts.Property{Name: "device_type", Value: dts.StringValueOf("memory")})
	case 1:
		mem.SetProperty(&dts.Property{Name: "device_type", Value: dts.StringValueOf("ram")})
	case 2:
		// missing entirely
	}

	switch rng.Intn(3) {
	case 0:
		mem.SetProperty(&dts.Property{Name: "reg", Value: dts.CellsValue(0x40000000, 0x1000)})
	case 1:
		// bad arity: odd cell count under stride 2
		mem.SetProperty(&dts.Property{Name: "reg", Value: dts.CellsValue(0x40000000, 0x1000, 0x5)})
	case 2:
		// missing entirely
	}
	return tree
}

// TestSyntacticCheckerCPUEnum exercises the enum path through the SMT
// encoding (string-sort disjunctions).
func TestSyntacticCheckerCPUEnum(t *testing.T) {
	for _, tt := range []struct {
		method string
		wantOK bool
	}{
		{"psci", true},
		{"spin-table", true},
		{"levitation", false},
	} {
		src := fmt.Sprintf(`
/dts-v1/;
/ {
	cpus {
		#address-cells = <1>;
		#size-cells = <0>;
		cpu@0 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			enable-method = %q;
			reg = <0x0>;
		};
	};
};
`, tt.method)
		tree, err := dts.Parse("cpu.dts", src)
		if err != nil {
			t.Fatal(err)
		}
		vs := NewSyntacticChecker(schema.StandardSet()).Check(tree)
		if ok := len(vs) == 0; ok != tt.wantOK {
			t.Errorf("enable-method %q: violations = %v, wantOK = %v", tt.method, vs, tt.wantOK)
		}
	}
}

// TestSyntacticCheckerYAMLSchemaPattern drives a loaded YAML schema
// with a pattern constraint end-to-end through the SMT checker.
func TestSyntacticCheckerYAMLSchemaPattern(t *testing.T) {
	sc, err := schema.Load(`
$id: clocked.yaml
select:
  node: clk
properties:
  clock-output-names:
    pattern: ^clk-[a-z]+$
required:
  - clock-output-names
`)
	if err != nil {
		t.Fatal(err)
	}
	set := &schema.Set{}
	set.Add(sc)
	checker := NewSyntacticChecker(set)

	good, _ := dts.Parse("g.dts", `
/dts-v1/;
/ { clk { clock-output-names = "clk-main"; }; };
`)
	if vs := checker.Check(good); len(vs) != 0 {
		t.Errorf("good clock flagged: %v", vs)
	}

	bad, _ := dts.Parse("b.dts", `
/dts-v1/;
/ { clk { clock-output-names = "CLK9"; }; };
`)
	vs := checker.Check(bad)
	if len(vs) != 1 || vs[0].Property != "clock-output-names" {
		t.Errorf("bad clock: %v", vs)
	}
}
