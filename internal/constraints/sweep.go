package constraints

import (
	"container/heap"
	"fmt"
	"sort"

	"llhsc/internal/addr"
)

// SemanticStrategy selects how SemanticChecker discharges the pairwise
// overlap queries of formula (7). Every strategy produces the same
// verdicts and witnesses (the cross-validation tests assert this); they
// differ only in how much work reaches the SMT solver.
type SemanticStrategy int

const (
	// StrategySweep (the default) runs an O(n log n) sweep-line over
	// the regions' arithmetic intervals to compute the exact set of
	// overlapping candidate pairs, then confirms each candidate — and
	// extracts its witness — with the SMT solver. The solver remains
	// the ground truth for every reported collision; the sweep only
	// prunes pairs whose queries would be trivially unsatisfiable.
	StrategySweep SemanticStrategy = iota
	// StrategyAssume checks every candidate pair, but on one long-lived
	// solver: each region's containment formula is blasted once behind
	// an activation literal and a pair is decided by solving under the
	// two literals as assumptions (the incremental usage the paper's
	// Section VI describes for Z3).
	StrategyAssume
	// StrategyPairwise is the original formulation: one Push/Pop scope
	// and one full solve per candidate pair. Kept as the baseline for
	// E14 and for cross-validation. The word-level tier is off: every
	// candidate reaches the solver.
	StrategyPairwise
	// StrategyWord is the explicit spelling of the default behaviour:
	// the sweep-line schedule with the word-level decision tier
	// (DESIGN.md §13) deciding concrete pairs arithmetically before any
	// solver exists. Identical to StrategySweep; present so flags and
	// cache keys can name the tier directly.
	StrategyWord
	// StrategyWordOff is the escape hatch: the sweep-line schedule with
	// the word-level tier disabled, so every surviving candidate is
	// bit-blasted as before this tier existed. Verdicts and witnesses
	// are byte-identical to the word tier's (the cross-validation tests
	// assert this); only the work profile differs.
	StrategyWordOff
)

// wordTierEnabled reports whether the word-level decision tier fires
// beneath this strategy. It is the default fast tier under sweep and
// assume; pairwise and word-off keep every pair on the solver.
func (s SemanticStrategy) wordTierEnabled() bool {
	switch s {
	case StrategySweep, StrategyAssume, StrategyWord:
		return true
	default:
		return false
	}
}

// String returns the flag spelling of the strategy.
func (s SemanticStrategy) String() string {
	switch s {
	case StrategySweep:
		return "sweep"
	case StrategyAssume:
		return "assume"
	case StrategyPairwise:
		return "pairwise"
	case StrategyWord:
		return "word"
	case StrategyWordOff:
		return "word-off"
	default:
		return fmt.Sprintf("SemanticStrategy(%d)", int(s))
	}
}

// Set implements flag.Value, so binaries can register a
// *SemanticStrategy directly with flag.Var and an invalid spelling
// fails at flag-parse time with the list of valid ones, before any
// input is read.
func (s *SemanticStrategy) Set(v string) error {
	parsed, err := ParseSemanticStrategy(v)
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// ParseSemanticStrategy parses a -semantic-strategy flag value.
func ParseSemanticStrategy(s string) (SemanticStrategy, error) {
	switch s {
	case "sweep", "":
		return StrategySweep, nil
	case "assume":
		return StrategyAssume, nil
	case "pairwise":
		return StrategyPairwise, nil
	case "word":
		return StrategyWord, nil
	case "word-off":
		return StrategyWordOff, nil
	default:
		return 0, fmt.Errorf("unknown semantic strategy %q (want sweep, assume, pairwise, word or word-off)", s)
	}
}

// interval is the arithmetic model of overlapTerm: the set of addresses
// x at the checker's bit width with b <= x < b+s, under the same
// truncation rules the SMT encoding applies. top marks a region whose
// end reaches or wraps past 2^width — only the lower bound constrains x
// (overlapTerm emits just Ule(base, x) there), so the interval extends
// to the top of the address space.
type interval struct {
	lo  uint64
	hi  uint64 // exclusive; ignored when top
	top bool
}

// regionInterval returns the interval of addresses overlapTerm accepts
// for r, and false for a region no address can inhabit (Size == 0,
// where overlapTerm is the constant false).
func regionInterval(r addr.Region, width int) (interval, bool) {
	if r.Size == 0 {
		return interval{}, false
	}
	end := r.Base + r.Size
	overflows := end < r.Base // 64-bit wrap
	if width < 64 && end >= 1<<uint(width) {
		overflows = true
	}
	if overflows {
		return interval{lo: truncTo(r.Base, width), top: true}, true
	}
	return interval{lo: r.Base, hi: end}, true
}

func truncTo(v uint64, width int) uint64 {
	if width >= 64 {
		return v
	}
	return v & ((1 << uint(width)) - 1)
}

// intervalsOverlap reports whether the two intervals share an address —
// by construction, exactly when the pair's SMT query is satisfiable.
func intervalsOverlap(a, b interval) bool {
	lo := a.lo
	if b.lo > lo {
		lo = b.lo
	}
	return (a.top || lo < a.hi) && (b.top || lo < b.hi)
}

// sweepItem is one region in flight during the sweep.
type sweepItem struct {
	iv  interval
	idx int // index into the regions slice
}

// sweepHeap is a min-heap of active regions ordered by interval end
// (top = infinity), so expired regions can be retired in O(log n).
type sweepHeap []sweepItem

func (h sweepHeap) Len() int { return len(h) }
func (h sweepHeap) Less(i, j int) bool {
	if h[i].iv.top != h[j].iv.top {
		return !h[i].iv.top
	}
	return h[i].iv.hi < h[j].iv.hi
}
func (h sweepHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *sweepHeap) Push(x any)    { *h = append(*h, x.(sweepItem)) }
func (h *sweepHeap) Pop() any      { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h sweepHeap) min() sweepItem { return h[0] }

// sweepCandidates computes, in O(n log n + k) for k output pairs, the
// exact set of eligible region pairs whose intervals overlap. Regions
// are processed in ascending order of interval start; a min-heap on
// interval end retires regions that can no longer overlap anything
// later. Every region still active when a new one starts overlaps it
// (active.lo <= new.lo < active.hi), so candidate emission is
// enumeration, not testing. Pairs come back sorted by (i, j) index —
// the same order candidatePairs produces — so downstream output
// ordering is strategy-independent.
func (sc *SemanticChecker) sweepCandidates(regions []addr.Region, width int) [][2]int {
	items := make([]sweepItem, 0, len(regions))
	for i, r := range regions {
		if iv, ok := regionInterval(r, width); ok {
			items = append(items, sweepItem{iv: iv, idx: i})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].iv.lo != items[j].iv.lo {
			return items[i].iv.lo < items[j].iv.lo
		}
		return items[i].idx < items[j].idx
	})

	var pairs [][2]int
	active := &sweepHeap{}
	for _, it := range items {
		for active.Len() > 0 && !active.min().iv.top && active.min().iv.hi <= it.iv.lo {
			heap.Pop(active)
		}
		for _, other := range *active {
			i, j := other.idx, it.idx
			if j < i {
				i, j = j, i
			}
			if sc.pairEligible(regions[i], regions[j]) {
				pairs = append(pairs, [2]int{i, j})
			}
		}
		heap.Push(active, it)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}
