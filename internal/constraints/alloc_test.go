package constraints

import (
	"testing"

	"llhsc/internal/addr"
)

// TestDecideConcretePairZeroAllocs pins the word tier's concrete
// decision path to 0 allocs/op — the acceptance bar of the
// zero-allocation hot path (DESIGN.md §13). If this fails, something
// on the DecideConcretePair → regionInterval → intervalsOverlap chain
// started escaping to the heap; future PRs must not regress it.
func TestDecideConcretePairZeroAllocs(t *testing.T) {
	a := addr.Region{Base: 0x4000_0000, Size: 0x10_0000, Path: "/mem@40000000"}
	b := addr.Region{Base: 0x4008_0000, Size: 0x10_0000, Path: "/dev@40080000"}
	c := addr.Region{Base: 0x9000_0000, Size: 0x1000, Path: "/dev@90000000"}

	allocs := testing.AllocsPerRun(1000, func() {
		if overlap, w := DecideConcretePair(a, b, 64); !overlap || w != b.Base {
			t.Fatal("overlap pair decided wrongly")
		}
		if overlap, _ := DecideConcretePair(a, c, 64); overlap {
			t.Fatal("disjoint pair decided wrongly")
		}
	})
	if allocs != 0 {
		t.Errorf("DecideConcretePair allocates %.1f allocs/op, want 0", allocs)
	}
}
