package constraints

import (
	"context"
	"fmt"
	"testing"

	"llhsc/internal/addr"
)

// TestDecideConcretePairZeroAllocs pins the word tier's concrete
// decision path to 0 allocs/op — the acceptance bar of the
// zero-allocation hot path (DESIGN.md §13). If this fails, something
// on the DecideConcretePair → regionInterval → intervalsOverlap chain
// started escaping to the heap; future PRs must not regress it.
func TestDecideConcretePairZeroAllocs(t *testing.T) {
	a := addr.Region{Base: 0x4000_0000, Size: 0x10_0000, Path: "/mem@40000000"}
	b := addr.Region{Base: 0x4008_0000, Size: 0x10_0000, Path: "/dev@40080000"}
	c := addr.Region{Base: 0x9000_0000, Size: 0x1000, Path: "/dev@90000000"}

	allocs := testing.AllocsPerRun(1000, func() {
		if overlap, w := DecideConcretePair(a, b, 64); !overlap || w != b.Base {
			t.Fatal("overlap pair decided wrongly")
		}
		if overlap, _ := DecideConcretePair(a, c, 64); overlap {
			t.Fatal("disjoint pair decided wrongly")
		}
	})
	if allocs != 0 {
		t.Errorf("DecideConcretePair allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestWordTierSweepUninstrumentedNoPerPairAllocs pins the other half of
// the hot-path contract: with OnQuery nil (slow-query logging off, the
// production default) the word-tier pair sweep must not allocate per
// pair. A fixed per-call setup cost is tolerated; what must not happen
// is allocation scaling with the pair count — that would mean the
// instrumentation hooks leak onto the disabled path.
func TestWordTierSweepUninstrumentedNoPerPairAllocs(t *testing.T) {
	const n = 32
	regions := make([]addr.Region, n)
	for i := range regions {
		regions[i] = addr.Region{
			Base: 0x1000_0000 + uint64(i)*0x1_0000,
			Size: 0x100,
			Path: fmt.Sprintf("/dev@%d", i),
		}
	}
	var pairs [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}

	sc := NewSemanticChecker() // OnQuery nil: instrumentation disabled
	ctx := context.Background()
	allocsFor := func(ps [][2]int) float64 {
		return testing.AllocsPerRun(200, func() {
			out, err := sc.findAssume(ctx, regions, 64, ps)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 0 {
				t.Fatal("disjoint regions produced collisions")
			}
		})
	}
	few, many := allocsFor(pairs[:4]), allocsFor(pairs)
	if many > few {
		t.Errorf("word-tier sweep allocates per pair with OnQuery nil: %.1f allocs for %d pairs vs %.1f for 4",
			many, len(pairs), few)
	}
}
