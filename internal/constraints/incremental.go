package constraints

import (
	"context"
	"fmt"

	"llhsc/internal/addr"
	"llhsc/internal/sat"
	"llhsc/internal/smt"
)

// IncrementalSemanticChecker maintains one long-lived SMT solver across
// a growing set of address regions, so that each region added after a
// delta application is checked against all earlier ones without
// rebuilding the encoding — the workflow the paper's Section VI
// advocates ("constraints can be added incrementally to the same solver
// instance"). Experiment E11 measures it against the fresh-solver
// alternative.
//
// Each region's containment formula is asserted once behind an
// activation literal; a pair query is a solve under the two literals as
// assumptions (no Push/Pop churn), so the solver keeps its learnt
// clauses, blasted comparators and saved phases across every query —
// the same machinery SemanticChecker's assume/sweep strategies use
// (DESIGN.md §9).
//
// The checker is not safe for concurrent use.
type IncrementalSemanticChecker struct {
	// DisableWord turns off the word-level decision tier (DESIGN.md
	// §13), forcing every pair onto the long-lived solver — the
	// configuration E11 measures, since with the tier on a concrete
	// region set never exercises the solver at all. Set it before the
	// first Add; verdicts and witnesses are identical either way.
	DisableWord bool

	ctx     *smt.Context
	solver  *smt.Solver
	x       *smt.Term
	width   int
	regions []addr.Region
	acts    []*smt.Term // activation literal per registered region
	// virtual-vs-memory pairs are exempt, as in SemanticChecker
	checkPair func(a, b addr.Region) bool
}

// NewIncrementalSemanticChecker returns a checker for addresses of the
// given bit width (1..64).
func NewIncrementalSemanticChecker(width int) *IncrementalSemanticChecker {
	ctx := smt.NewContext()
	return &IncrementalSemanticChecker{
		ctx:    ctx,
		solver: smt.NewSolver(ctx),
		x:      ctx.BVVar("x", width),
		width:  width,
		checkPair: func(a, b addr.Region) bool {
			if a.Kind == addr.KindVirtual && b.Kind == addr.KindMemory ||
				a.Kind == addr.KindMemory && b.Kind == addr.KindVirtual {
				return false
			}
			return true
		},
	}
}

// Len returns the number of regions added so far.
func (c *IncrementalSemanticChecker) Len() int { return len(c.regions) }

// Add registers a region and returns the collisions between it and all
// previously added regions. The underlying solver keeps its learnt
// clauses and bit-blasted comparators between calls.
func (c *IncrementalSemanticChecker) Add(r addr.Region) []Collision {
	out, _ := c.AddContext(context.Background(), r)
	return out
}

// AddContext is Add under a context. When cancellation or a budget
// (installed via SetBudget) stops the search, the region is NOT
// registered — the checker's state is as before the call — and the
// collisions confirmed so far are returned with a *sat.LimitError.
func (c *IncrementalSemanticChecker) AddContext(ctx context.Context, r addr.Region) ([]Collision, error) {
	// With the word tier on, the solver may never run, so the context
	// must be polled here to preserve cancellation semantics (a
	// canceled call must not register the region).
	if err := ctx.Err(); err != nil {
		return nil, &sat.LimitError{Reason: sat.StopCanceled, Err: err}
	}
	if !c.DisableWord {
		var out []Collision
		for _, prev := range c.regions {
			if !c.checkPair(prev, r) {
				continue
			}
			if overlap, w := DecideConcretePair(prev, r, c.width); overlap {
				out = append(out, Collision{A: prev, B: r, Witness: w})
			}
		}
		c.regions = append(c.regions, r)
		c.acts = append(c.acts, nil) // blasted on demand if the tier is later disabled
		return out, nil
	}
	// The activation literal and its implication are idempotent on
	// retry after a limit stop: BoolVar and overlapTerm hash-cons to
	// the same terms, so re-asserting adds an already-known clause.
	act := c.act(len(c.regions), r)
	var out []Collision
	for i, prev := range c.regions {
		if !c.checkPair(prev, r) {
			continue
		}
		// Only the pair under test is assumed; the other activation
		// literals stay free (a free literal's implication can only
		// over-constrain x, never flip a verdict) — see the same
		// choice in SemanticChecker's assume strategy.
		st, err := c.solver.CheckAssumingContext(ctx, c.act(i, prev), act)
		if st == sat.Sat {
			// Minimize the witness so the solver path reports the same
			// least shared address the word tier computes.
			w, werr := minimizeBV(ctx, c.solver, c.x, c.width, nil,
				[]*smt.Term{c.act(i, prev), act})
			if werr != nil {
				return out, werr
			}
			out = append(out, Collision{A: prev, B: r, Witness: w})
		}
		if err != nil {
			return out, err
		}
	}
	c.regions = append(c.regions, r)
	c.acts = append(c.acts, act)
	return out, nil
}

// act returns region i's activation literal, asserting its containment
// implication on first use. Regions registered while the word tier was
// active have no literal yet; creating it here keeps the two modes
// interchangeable mid-stream.
func (c *IncrementalSemanticChecker) act(i int, r addr.Region) *smt.Term {
	if i < len(c.acts) && c.acts[i] != nil {
		return c.acts[i]
	}
	a := c.ctx.BoolVar(fmt.Sprintf("act%d", i))
	c.solver.Assert(c.ctx.Implies(a, overlapTerm(c.ctx, c.x, r, c.width)))
	if i < len(c.acts) {
		c.acts[i] = a
	}
	return a
}

// AddAll adds regions in order and returns every collision found.
func (c *IncrementalSemanticChecker) AddAll(regions []addr.Region) []Collision {
	out, _ := c.AddAllContext(context.Background(), regions)
	return out
}

// AddAllContext adds regions in order under a context, stopping at the
// first region whose checks were cut short.
func (c *IncrementalSemanticChecker) AddAllContext(ctx context.Context, regions []addr.Region) ([]Collision, error) {
	var out []Collision
	for _, r := range regions {
		cs, err := c.AddContext(ctx, r)
		out = append(out, cs...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// SetBudget installs a resource budget on the underlying solver,
// bounding every subsequent Add query.
func (c *IncrementalSemanticChecker) SetBudget(b sat.Budget) { c.solver.SetBudget(b) }

// Stats exposes the underlying solver statistics (for the E11 report).
func (c *IncrementalSemanticChecker) Stats() smt.Stats { return c.solver.Stats() }

// String summarizes the checker state.
func (c *IncrementalSemanticChecker) String() string {
	return fmt.Sprintf("incremental semantic checker: %d regions, %d checks",
		len(c.regions), c.solver.Stats().Checks)
}
