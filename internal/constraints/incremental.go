package constraints

import (
	"context"
	"fmt"

	"llhsc/internal/addr"
	"llhsc/internal/sat"
	"llhsc/internal/smt"
)

// IncrementalSemanticChecker maintains one long-lived SMT solver across
// a growing set of address regions, so that each region added after a
// delta application is checked against all earlier ones without
// rebuilding the encoding — the workflow the paper's Section VI
// advocates ("constraints can be added incrementally to the same solver
// instance"). Experiment E11 measures it against the fresh-solver
// alternative.
//
// The checker is not safe for concurrent use.
type IncrementalSemanticChecker struct {
	ctx     *smt.Context
	solver  *smt.Solver
	x       *smt.Term
	width   int
	regions []addr.Region
	inTerm  []*smt.Term
	// virtual-vs-memory pairs are exempt, as in SemanticChecker
	checkPair func(a, b addr.Region) bool
}

// NewIncrementalSemanticChecker returns a checker for addresses of the
// given bit width (1..64).
func NewIncrementalSemanticChecker(width int) *IncrementalSemanticChecker {
	ctx := smt.NewContext()
	return &IncrementalSemanticChecker{
		ctx:    ctx,
		solver: smt.NewSolver(ctx),
		x:      ctx.BVVar("x", width),
		width:  width,
		checkPair: func(a, b addr.Region) bool {
			if a.Kind == addr.KindVirtual && b.Kind == addr.KindMemory ||
				a.Kind == addr.KindMemory && b.Kind == addr.KindVirtual {
				return false
			}
			return true
		},
	}
}

// Len returns the number of regions added so far.
func (c *IncrementalSemanticChecker) Len() int { return len(c.regions) }

// Add registers a region and returns the collisions between it and all
// previously added regions. The underlying solver keeps its learnt
// clauses and bit-blasted comparators between calls.
func (c *IncrementalSemanticChecker) Add(r addr.Region) []Collision {
	out, _ := c.AddContext(context.Background(), r)
	return out
}

// AddContext is Add under a context. When cancellation or a budget
// (installed via SetBudget) stops the search, the region is NOT
// registered — the checker's state is as before the call — and the
// collisions confirmed so far are returned with a *sat.LimitError.
func (c *IncrementalSemanticChecker) AddContext(ctx context.Context, r addr.Region) ([]Collision, error) {
	term := overlapTerm(c.ctx, c.x, r, c.width)
	var out []Collision
	for i, prev := range c.regions {
		if !c.checkPair(prev, r) {
			continue
		}
		c.solver.Push()
		c.solver.Assert(c.inTerm[i])
		c.solver.Assert(term)
		st, err := c.solver.CheckContext(ctx)
		if st == sat.Sat {
			out = append(out, Collision{A: prev, B: r, Witness: c.solver.BVValue(c.x)})
		}
		c.solver.Pop()
		if err != nil {
			return out, err
		}
	}
	c.regions = append(c.regions, r)
	c.inTerm = append(c.inTerm, term)
	return out, nil
}

// AddAll adds regions in order and returns every collision found.
func (c *IncrementalSemanticChecker) AddAll(regions []addr.Region) []Collision {
	out, _ := c.AddAllContext(context.Background(), regions)
	return out
}

// AddAllContext adds regions in order under a context, stopping at the
// first region whose checks were cut short.
func (c *IncrementalSemanticChecker) AddAllContext(ctx context.Context, regions []addr.Region) ([]Collision, error) {
	var out []Collision
	for _, r := range regions {
		cs, err := c.AddContext(ctx, r)
		out = append(out, cs...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// SetBudget installs a resource budget on the underlying solver,
// bounding every subsequent Add query.
func (c *IncrementalSemanticChecker) SetBudget(b sat.Budget) { c.solver.SetBudget(b) }

// Stats exposes the underlying solver statistics (for the E11 report).
func (c *IncrementalSemanticChecker) Stats() smt.Stats { return c.solver.Stats() }

// String summarizes the checker state.
func (c *IncrementalSemanticChecker) String() string {
	return fmt.Sprintf("incremental semantic checker: %d regions, %d checks",
		len(c.regions), c.solver.Stats().Checks)
}
