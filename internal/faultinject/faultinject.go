// Package faultinject provides deterministic, named failure points for
// chaos testing the persistence and service layers. Production code
// threads a *Set through and consults it at each point where the
// outside world can betray it — a write that the kernel fails, a
// torn (short) write from a crash mid-syscall, a disk that answers
// slowly, a routine that dies outright. Tests arm individual points
// with a trigger (always, the nth call, every nth call, or a seeded
// probability) and an action (error, short write, latency, panic) and
// then assert the recovery invariants.
//
// Everything is deterministic: probability triggers draw from a PRNG
// seeded per point from the Set seed and the point name, so a failing
// chaos run replays bit-identically from its seed. A nil *Set is a
// disarmed set — every method is a no-op returning the zero value — so
// production call sites pay one nil check and no locking when fault
// injection is off (the same nil-object pattern as obs.Span).
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrInjected is the default error returned by error-action points
// armed without an explicit error. Callers can match injected failures
// with errors.Is even when a point wraps its own message.
var ErrInjected = errors.New("faultinject: injected fault")

// Action is what an armed point does when its trigger fires, checked
// in order: latency (always applied first), panic, error, short
// write. A zero Action with a fired trigger only counts the fire.
type Action struct {
	// Err, when non-nil, is returned from Fire / FireWrite.
	Err error
	// Short marks a torn write: FireWrite keeps at most KeepBytes bytes
	// and then fails, the shape a crash mid-syscall produces.
	Short bool
	// KeepBytes is the byte cap of a Short action (0 = fail before any
	// byte lands).
	KeepBytes int
	// Latency, when > 0, is slept before the point returns (both Fire
	// and FireWrite), simulating a slow disk. Combines with Err.
	Latency time.Duration
	// PanicMsg, when non-empty, panics — the crash half of
	// kill-and-reopen tests that do not want to fork a process.
	PanicMsg string
}

// Trigger decides, per call, whether an armed point fires. call is
// 1-based. Implementations must be deterministic given (call, rng).
type Trigger func(call uint64, rng *rand.Rand) bool

// Always fires on every call.
func Always() Trigger {
	return func(uint64, *rand.Rand) bool { return true }
}

// OnCall fires on exactly the nth call (1-based) and never again.
func OnCall(n uint64) Trigger {
	return func(call uint64, _ *rand.Rand) bool { return call == n }
}

// FromCall fires on the nth call (1-based) and every call after it.
func FromCall(n uint64) Trigger {
	return func(call uint64, _ *rand.Rand) bool { return call >= n }
}

// EveryNth fires on calls n, 2n, 3n, ...
func EveryNth(n uint64) Trigger {
	return func(call uint64, _ *rand.Rand) bool { return n > 0 && call%n == 0 }
}

// Prob fires each call independently with probability p, drawn from
// the point's seeded PRNG — deterministic for a given Set seed.
func Prob(p float64) Trigger {
	return func(_ uint64, rng *rand.Rand) bool { return rng.Float64() < p }
}

// point is one named failure point's armed state and counters.
type point struct {
	trigger Trigger
	act     Action
	rng     *rand.Rand
	calls   uint64 // consultations while armed
	fires   uint64 // times the trigger fired
}

// Set is a collection of armed failure points, safe for concurrent
// use. The zero value of *Set (nil) is fully disarmed.
type Set struct {
	seed int64

	mu     sync.Mutex
	points map[string]*point
	sleep  func(time.Duration) // swapped in tests to avoid real sleeps
}

// NewSet returns an empty (fully disarmed) set whose probability
// triggers derive from seed.
func NewSet(seed int64) *Set {
	return &Set{seed: seed, points: make(map[string]*point), sleep: time.Sleep}
}

// pointSeed derives a per-point PRNG seed so that arming one point
// never perturbs another point's random sequence.
func (s *Set) pointSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return s.seed ^ int64(h.Sum64())
}

// Arm installs (or replaces) a point's trigger and action. Counters
// reset on re-arm.
func (s *Set) Arm(name string, trigger Trigger, act Action) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points[name] = &point{
		trigger: trigger,
		act:     act,
		rng:     rand.New(rand.NewSource(s.pointSeed(name))),
	}
}

// ArmError arms name to return err (ErrInjected if nil) when trigger
// fires.
func (s *Set) ArmError(name string, trigger Trigger, err error) {
	if err == nil {
		err = fmt.Errorf("%w at %s", ErrInjected, name)
	}
	s.Arm(name, trigger, Action{Err: err})
}

// ArmShortWrite arms name to cut writes down to keep bytes and fail.
func (s *Set) ArmShortWrite(name string, trigger Trigger, keep int) {
	s.Arm(name, trigger, Action{Short: true, KeepBytes: keep})
}

// ArmLatency arms name to stall for d when trigger fires.
func (s *Set) ArmLatency(name string, trigger Trigger, d time.Duration) {
	s.Arm(name, trigger, Action{Latency: d})
}

// ArmPanic arms name to panic with msg when trigger fires.
func (s *Set) ArmPanic(name string, trigger Trigger, msg string) {
	s.Arm(name, trigger, Action{PanicMsg: msg})
}

// Disarm removes a point; its counters are forgotten.
func (s *Set) Disarm(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.points, name)
}

// evaluate advances the point's call counter and resolves the action,
// or returns ok=false when the point is disarmed or did not fire.
func (s *Set) evaluate(name string) (Action, bool) {
	if s == nil {
		return Action{}, false
	}
	s.mu.Lock()
	p, ok := s.points[name]
	if !ok {
		s.mu.Unlock()
		return Action{}, false
	}
	p.calls++
	fired := p.trigger(p.calls, p.rng)
	if fired {
		p.fires++
	}
	act, sleep := p.act, s.sleep
	s.mu.Unlock()
	if !fired {
		return Action{}, false
	}
	if act.Latency > 0 {
		sleep(act.Latency)
	}
	if act.PanicMsg != "" {
		panic("faultinject: " + act.PanicMsg)
	}
	return act, true
}

// Fire consults the point: nil when disarmed or the trigger did not
// fire, the armed error otherwise (after any armed latency; an armed
// panic propagates).
func (s *Set) Fire(name string) error {
	act, fired := s.evaluate(name)
	if !fired {
		return nil
	}
	if act.Err != nil {
		return act.Err
	}
	if act.Short {
		// A short-write point consulted through Fire (no byte count to
		// truncate) still fails the operation.
		return fmt.Errorf("%w at %s (short write)", ErrInjected, name)
	}
	return nil
}

// FireWrite consults the point for a write of n bytes. keep is how
// many bytes the caller should actually write (n when healthy); a
// non-nil err means the write must fail after those bytes — the torn
// write a crash mid-syscall produces.
func (s *Set) FireWrite(name string, n int) (keep int, err error) {
	act, fired := s.evaluate(name)
	if !fired {
		return n, nil
	}
	switch {
	case act.Err != nil:
		return 0, act.Err
	case act.Short:
		if act.KeepBytes < n {
			n = act.KeepBytes
		}
		return n, fmt.Errorf("%w at %s (short write, kept %d)", ErrInjected, name, n)
	default:
		return n, nil
	}
}

// Calls returns how many times the point was consulted while armed.
func (s *Set) Calls(name string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.points[name]; ok {
		return p.calls
	}
	return 0
}

// Fires returns how many times the point's trigger fired.
func (s *Set) Fires(name string) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.points[name]; ok {
		return p.fires
	}
	return 0
}

// Armed returns the names of the currently armed points, sorted.
func (s *Set) Armed() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.points))
	for n := range s.points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetSleep replaces the latency sleeper (tests that only want to
// observe that a delay would have happened). The default is
// time.Sleep. No-op on nil.
func (s *Set) SetSleep(fn func(time.Duration)) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sleep = fn
}
