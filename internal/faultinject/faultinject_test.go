package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSetIsDisarmed(t *testing.T) {
	var s *Set
	if err := s.Fire("x"); err != nil {
		t.Fatalf("nil set fired: %v", err)
	}
	keep, err := s.FireWrite("x", 10)
	if keep != 10 || err != nil {
		t.Fatalf("nil set FireWrite = %d, %v", keep, err)
	}
	if s.Calls("x") != 0 || s.Fires("x") != 0 || s.Armed() != nil {
		t.Fatal("nil set has state")
	}
	s.Arm("x", Always(), Action{})     // must not panic
	s.Disarm("x")                      // must not panic
	s.SetSleep(func(time.Duration) {}) // must not panic
}

func TestDisarmedPointPassesThrough(t *testing.T) {
	s := NewSet(1)
	if err := s.Fire("never.armed"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if keep, err := s.FireWrite("never.armed", 7); keep != 7 || err != nil {
		t.Fatalf("disarmed FireWrite = %d, %v", keep, err)
	}
}

func TestOnCallFiresExactlyOnce(t *testing.T) {
	s := NewSet(1)
	boom := errors.New("boom")
	s.ArmError("p", OnCall(3), boom)
	for i := 1; i <= 5; i++ {
		err := s.Fire("p")
		if i == 3 && !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("call %d fired: %v", i, err)
		}
	}
	if s.Calls("p") != 5 || s.Fires("p") != 1 {
		t.Fatalf("calls=%d fires=%d, want 5/1", s.Calls("p"), s.Fires("p"))
	}
}

func TestFromCallAndEveryNth(t *testing.T) {
	s := NewSet(1)
	s.ArmError("from", FromCall(3), nil)
	s.ArmError("every", EveryNth(2), nil)
	var fromHits, everyHits int
	for i := 1; i <= 6; i++ {
		if s.Fire("from") != nil {
			fromHits++
		}
		if s.Fire("every") != nil {
			everyHits++
		}
	}
	if fromHits != 4 { // calls 3,4,5,6
		t.Errorf("FromCall(3) fired %d times over 6 calls, want 4", fromHits)
	}
	if everyHits != 3 { // calls 2,4,6
		t.Errorf("EveryNth(2) fired %d times over 6 calls, want 3", everyHits)
	}
}

func TestDefaultErrorIsErrInjected(t *testing.T) {
	s := NewSet(1)
	s.ArmError("p", Always(), nil)
	if err := s.Fire("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestShortWriteTruncatesAndFails(t *testing.T) {
	s := NewSet(1)
	s.ArmShortWrite("w", OnCall(2), 4)
	if keep, err := s.FireWrite("w", 10); keep != 10 || err != nil {
		t.Fatalf("healthy write = %d, %v", keep, err)
	}
	keep, err := s.FireWrite("w", 10)
	if keep != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = %d, %v; want 4 bytes + ErrInjected", keep, err)
	}
	// A write smaller than the cap is kept whole but still fails.
	s.ArmShortWrite("w2", Always(), 100)
	if keep, err := s.FireWrite("w2", 10); keep != 10 || err == nil {
		t.Fatalf("capped-above write = %d, %v", keep, err)
	}
	// Fire (no byte count) on a short-write point still fails.
	s.ArmShortWrite("w3", Always(), 0)
	if err := s.Fire("w3"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Fire on short-write point = %v", err)
	}
}

func TestLatencyUsesInjectedSleeper(t *testing.T) {
	s := NewSet(1)
	var slept time.Duration
	s.SetSleep(func(d time.Duration) { slept += d })
	s.ArmLatency("slow", Always(), 250*time.Millisecond)
	if err := s.Fire("slow"); err != nil {
		t.Fatalf("latency point errored: %v", err)
	}
	if slept != 250*time.Millisecond {
		t.Fatalf("slept %v, want 250ms", slept)
	}
}

func TestPanicAction(t *testing.T) {
	s := NewSet(1)
	s.ArmPanic("die", OnCall(1), "simulated crash")
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Fire("die")
}

func TestProbIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		s := NewSet(seed)
		s.ArmError("p", Prob(0.5), nil)
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Fire("p") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i+1)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 64-call sequence")
	}
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("Prob(0.5) fired %d/64 times — trigger looks constant", fires)
	}
}

func TestPointsHaveIndependentRandomStreams(t *testing.T) {
	// Arming a second probability point must not change what the first
	// one does: each point draws from its own name-derived PRNG.
	seq := func(armOther bool) []bool {
		s := NewSet(7)
		s.ArmError("a", Prob(0.5), nil)
		if armOther {
			s.ArmError("b", Prob(0.5), nil)
		}
		out := make([]bool, 32)
		for i := range out {
			if armOther {
				s.Fire("b")
			}
			out[i] = s.Fire("a") != nil
		}
		return out
	}
	solo, interleaved := seq(false), seq(true)
	for i := range solo {
		if solo[i] != interleaved[i] {
			t.Fatalf("point a's sequence perturbed by point b at call %d", i+1)
		}
	}
}

func TestReArmResetsCounters(t *testing.T) {
	s := NewSet(1)
	s.ArmError("p", Always(), nil)
	s.Fire("p")
	s.Fire("p")
	s.ArmError("p", Always(), nil)
	if s.Calls("p") != 0 || s.Fires("p") != 0 {
		t.Fatalf("re-arm kept counters: calls=%d fires=%d", s.Calls("p"), s.Fires("p"))
	}
	s.Disarm("p")
	if err := s.Fire("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestArmedListsSorted(t *testing.T) {
	s := NewSet(1)
	s.ArmError("z", Always(), nil)
	s.ArmError("a", Always(), nil)
	s.ArmError("m", Always(), nil)
	got := s.Armed()
	want := []string{"a", "m", "z"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Armed() = %v, want %v", got, want)
	}
}

func TestConcurrentFireIsSafe(t *testing.T) {
	s := NewSet(1)
	s.ArmError("p", EveryNth(3), nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s.Fire("p")
				s.FireWrite("p", 16)
			}
		}()
	}
	wg.Wait()
	wantCalls := uint64(8 * 300 * 2)
	if s.Calls("p") != wantCalls {
		t.Fatalf("calls = %d, want %d", s.Calls("p"), wantCalls)
	}
	if s.Fires("p") != wantCalls/3 {
		t.Fatalf("fires = %d, want %d", s.Fires("p"), wantCalls/3)
	}
}
