// Overlay-to-delta bridge: a /plugin/ overlay is, in delta-oriented
// terms, one delta module whose operations merge the overlay fragments
// into their targets, activated exactly when the overlay is applied.
// Modeling it this way lets the lifted pipeline (Set.Lift) verify the
// overlay-applied and overlay-absent variants of a base tree in one
// solver session, with the overlay's presence as an ordinary feature
// guard — instead of checking two concrete trees separately.
package delta

import (
	"fmt"

	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// FromOverlay converts a parsed /plugin/ overlay into a Set holding a
// single delta named name, guarded by the feature (the overlay is
// applied in exactly the configurations that select it; an empty
// feature makes the delta unconditional). The overlay's own root
// content becomes a modifies-"/" operation, and each fragment becomes a
// modifies operation targeting "&label" or the literal path — the same
// resolution ApplyOverlay performs, so applying the Set with the
// feature selected must agree with dts.ApplyOverlay on the same base
// (the conformance tests pin this).
func FromOverlay(name string, ov *dts.Tree, feature string) (*Set, error) {
	if !ov.Plugin {
		return nil, fmt.Errorf("delta: FromOverlay %s: tree is not a /plugin/ overlay", name)
	}
	d := &Delta{Name: name}
	if feature != "" {
		d.When = featmodel.Var(feature)
	}
	if len(ov.Root.Properties) > 0 || len(ov.Root.Children) > 0 {
		frag := ov.Root.Clone()
		frag.Label = ""
		d.Ops = append(d.Ops, Operation{Kind: OpModifies, Target: "/", Fragment: frag})
	}
	for _, f := range ov.Fragments {
		target := f.Ref
		if !f.IsPath {
			target = "&" + f.Ref
		}
		frag := f.Node.Clone()
		frag.Label = ""
		d.Ops = append(d.Ops, Operation{Kind: OpModifies, Target: target, Fragment: frag})
	}
	return NewSet([]*Delta{d})
}
