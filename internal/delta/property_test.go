package delta

import (
	"fmt"
	"math/rand"
	"testing"

	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// randomDeltaSet builds a set of deltas with random (acyclic) after
// edges and disjoint write sets, so every topological order must yield
// the same product.
func randomDeltaSet(rng *rand.Rand, n int) []*Delta {
	deltas := make([]*Delta, n)
	for i := 0; i < n; i++ {
		frag := &dts.Node{Name: "/"}
		frag.SetProperty(&dts.Property{
			Name:  fmt.Sprintf("p%d", i),
			Value: dts.CellsValue(uint32(i)),
		})
		d := &Delta{
			Name: fmt.Sprintf("d%d", i),
			Ops:  []Operation{{Kind: OpModifies, Target: "/", Fragment: frag}},
		}
		// random edges to earlier deltas only (acyclic by construction)
		for j := 0; j < i; j++ {
			if rng.Intn(4) == 0 {
				d.After = append(d.After, fmt.Sprintf("d%d", j))
			}
		}
		deltas[i] = d
	}
	return deltas
}

func TestPropertyOrderIsTopologicalAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(10)
		deltas := randomDeltaSet(rng, n)
		set, err := NewSet(deltas)
		if err != nil {
			t.Fatal(err)
		}
		cfg := featmodel.ConfigOf()
		ordered, err := set.Order(cfg)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		pos := make(map[string]int)
		for i, d := range ordered {
			pos[d.Name] = i
		}
		// topological: after-edges respected
		for _, d := range deltas {
			for _, dep := range d.After {
				if pos[dep] > pos[d.Name] {
					t.Fatalf("iter %d: %s ordered before its dependency %s", iter, d.Name, dep)
				}
			}
		}
		// deterministic: same order on repeat
		again, err := set.Order(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ordered {
			if ordered[i].Name != again[i].Name {
				t.Fatalf("iter %d: order not deterministic", iter)
			}
		}
	}
}

func TestPropertyDisjointWritesCommute(t *testing.T) {
	// With disjoint write sets, reversing the declaration order of
	// unordered deltas must not change the product.
	rng := rand.New(rand.NewSource(9))
	core := dts.NewTree()
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(8)
		deltas := randomDeltaSet(rng, n)

		set1, err := NewSet(deltas)
		if err != nil {
			t.Fatal(err)
		}
		reversed := make([]*Delta, n)
		for i, d := range deltas {
			reversed[n-1-i] = d
		}
		set2, err := NewSet(reversed)
		if err != nil {
			t.Fatal(err)
		}

		cfg := featmodel.ConfigOf()
		p1, _, err := set1.Apply(core, cfg)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		p2, _, err := set2.Apply(core, cfg)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// same property set with same values (order may differ)
		for _, p := range p1.Root.Properties {
			q := p2.Root.Property(p.Name)
			if q == nil {
				t.Fatalf("iter %d: property %s missing after reorder", iter, p.Name)
			}
			if p.Value.U32s()[0] != q.Value.U32s()[0] {
				t.Fatalf("iter %d: property %s value differs", iter, p.Name)
			}
		}
		if len(p1.Root.Properties) != len(p2.Root.Properties) {
			t.Fatalf("iter %d: property count differs", iter)
		}
	}
}

func TestPropertyActivationMonotone(t *testing.T) {
	// Adding features to a configuration can only grow the set of
	// active deltas when all when-clauses are positive (no negation).
	set, err := Parse("mono", `
delta a when f1 { modifies / { a = <1>; } }
delta b when f1 && f2 { modifies / { b = <1>; } }
delta c when f2 || f3 { modifies / { c = <1>; } }
`)
	if err != nil {
		t.Fatal(err)
	}
	small := featmodel.ConfigOf("f1")
	big := featmodel.ConfigOf("f1", "f2", "f3")
	activeSmall := map[string]bool{}
	for _, d := range set.Active(small) {
		activeSmall[d.Name] = true
	}
	for name := range activeSmall {
		found := false
		for _, d := range set.Active(big) {
			if d.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("delta %s lost when growing the configuration", name)
		}
	}
}
