package delta

import (
	"testing"

	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

const ovBaseSrc = `/dts-v1/;
/ {
	soc {
		uart0: serial@10000000 {
			compatible = "ns16550a";
			status = "disabled";
		};
		i2c0: i2c@20000000 {
			status = "disabled";
		};
	};
};
`

const ovSrc = `/dts-v1/;
/plugin/;
/ {
	chosen {
		overlay-loaded;
	};
};
&uart0 {
	status = "okay";
	current-speed = <115200>;
};
&{/soc/i2c@20000000} {
	status = "okay";
};
`

func parseOverlayPair(t *testing.T) (base, ov *dts.Tree) {
	t.Helper()
	base, err := dts.Parse("base.dts", ovBaseSrc)
	if err != nil {
		t.Fatalf("parse base: %v", err)
	}
	ov, err = dts.Parse("ov.dtso", ovSrc)
	if err != nil {
		t.Fatalf("parse overlay: %v", err)
	}
	return base, ov
}

// TestFromOverlayMatchesApplyOverlay pins the cross-validation the
// ingestion pipeline relies on: deriving the overlay-on product through
// the delta Set must agree, on canonical print, with dts.ApplyOverlay.
func TestFromOverlayMatchesApplyOverlay(t *testing.T) {
	base, ov := parseOverlayPair(t)
	set, err := FromOverlay("uart-overlay", ov, "OVERLAY")
	if err != nil {
		t.Fatalf("FromOverlay: %v", err)
	}

	direct, err := dts.ApplyOverlay(base, ov)
	if err != nil {
		t.Fatalf("ApplyOverlay: %v", err)
	}

	viaDeltas, trace, err := set.Apply(base, featmodel.ConfigOf("OVERLAY"))
	if err != nil {
		t.Fatalf("Set.Apply: %v", err)
	}
	if len(trace) != 1 || trace[0] != "uart-overlay" {
		t.Errorf("trace = %v", trace)
	}
	if got, want := viaDeltas.Print(), direct.Print(); got != want {
		t.Errorf("delta-derived product differs from ApplyOverlay:\n--- delta\n%s\n--- direct\n%s", got, want)
	}
}

// TestFromOverlayOffLeavesBase: with the feature deselected the delta
// is inactive and the product is the unmodified base.
func TestFromOverlayOffLeavesBase(t *testing.T) {
	base, ov := parseOverlayPair(t)
	set, err := FromOverlay("uart-overlay", ov, "OVERLAY")
	if err != nil {
		t.Fatalf("FromOverlay: %v", err)
	}
	product, trace, err := set.Apply(base, featmodel.ConfigOf())
	if err != nil {
		t.Fatalf("Set.Apply: %v", err)
	}
	if len(trace) != 0 {
		t.Errorf("trace = %v, want empty", trace)
	}
	if product.Print() != base.Print() {
		t.Error("overlay-off product differs from base")
	}
}

// TestFromOverlayBlame: nodes merged by the overlay delta carry its
// name in Origin.Delta, so violations inside overlay content blame the
// overlay.
func TestFromOverlayBlame(t *testing.T) {
	base, ov := parseOverlayPair(t)
	set, err := FromOverlay("uart-overlay", ov, "OVERLAY")
	if err != nil {
		t.Fatal(err)
	}
	product, _, err := set.Apply(base, featmodel.ConfigOf("OVERLAY"))
	if err != nil {
		t.Fatal(err)
	}
	uart := product.Lookup("/soc/serial@10000000")
	if p := uart.Property("current-speed"); p == nil || p.Origin.Delta != "uart-overlay" {
		t.Errorf("overlay-written property should blame the overlay delta, got %+v", p)
	}
}

// TestFromOverlayLifted: the overlay delta participates in lifted
// checking — the merged tree guards overlay content with the feature,
// and &label targets resolve through lifted node labels.
func TestFromOverlayLifted(t *testing.T) {
	base, ov := parseOverlayPair(t)
	set, err := FromOverlay("uart-overlay", ov, "OVERLAY")
	if err != nil {
		t.Fatal(err)
	}
	lt, err := set.Lift(base)
	if err != nil {
		t.Fatalf("Lift: %v", err)
	}
	if len(lt.Conflicts) != 0 {
		t.Fatalf("unexpected lifted conflicts: %v", lt.Conflicts)
	}
	uart, _ := lt.resolveLifted("&uart0")
	if uart == nil {
		t.Fatal("lifted &uart0 did not resolve")
	}
	status := uart.Prop("status")
	if status == nil || len(status.Variants) != 2 {
		t.Fatalf("status variants = %+v, want base + overlay", status)
	}
	overlayVariant := status.Variants[1]
	if overlayVariant.Cond == nil || overlayVariant.Cond.String() != "OVERLAY" {
		t.Errorf("overlay write should be guarded by OVERLAY, got %v", overlayVariant.Cond)
	}
}

// TestFromOverlayRejectsPlainTree: only /plugin/ sources convert.
func TestFromOverlayRejectsPlainTree(t *testing.T) {
	base, _ := parseOverlayPair(t)
	if _, err := FromOverlay("x", base, "F"); err == nil {
		t.Error("FromOverlay should reject a non-plugin tree")
	}
}
