package delta

import (
	"context"
	"errors"
	"testing"

	"llhsc/internal/featmodel"
)

func TestApplyContextStepCap(t *testing.T) {
	set := mustSet(t, listing4)
	core := mustTree(t, coreDTS)
	cfg := featmodel.ConfigOf("veth0", "veth1", "memory")

	// unlimited: all four deltas apply
	if _, trace, err := set.ApplyContext(context.Background(), core, cfg, 0); err != nil {
		t.Fatalf("unlimited apply: %v", err)
	} else if len(trace) != 4 {
		t.Fatalf("trace = %v, want 4 deltas", trace)
	}

	// the four deltas carry four ops in total; cap at 2
	_, trace, err := set.ApplyContext(context.Background(), core, cfg, 2)
	var sl *StepLimitError
	if !errors.As(err, &sl) {
		t.Fatalf("err = %v, want *StepLimitError", err)
	}
	if len(trace) > 2 {
		t.Errorf("trace = %v, should stop within the cap", trace)
	}
}

func TestApplyContextCanceled(t *testing.T) {
	set := mustSet(t, listing4)
	core := mustTree(t, coreDTS)
	cfg := featmodel.ConfigOf("veth0", "veth1", "memory")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := set.ApplyContext(ctx, core, cfg, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
