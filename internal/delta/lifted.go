package delta

import (
	"fmt"
	"sort"
	"strings"

	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// This file builds the variability-aware merged tree ("150% model")
// behind family-based lifted checking (DESIGN.md §14): instead of
// deriving one product tree per configuration, every delta is applied
// once to a shared tree whose nodes and property values carry *presence
// conditions* — guard expressions over feature names that say in which
// configurations the artifact exists. Checkers then conjoin these
// guards with the feature-model formula and ask the solver whether any
// valid configuration exhibits a violation, following Bayha's
// constraint-lifting construction and Haber et al.'s family-based
// treatment of delta applicability.
//
// Presence conditions are absolute: a node's Cond already accounts for
// the activation guards of every delta that created, widened or removed
// it, including removal of its ancestors (removals push their negated
// guard down the subtree). A nil condition means "in every
// configuration". Property values are variant lists — each write by a
// delta appends a guarded variant and restricts the guards of the
// variants it overwrites — so the variant whose guard holds under a
// configuration is exactly the value the enumerative Apply would have
// produced (Project materializes this and the differential tests pin
// it against Apply).

// LiftedVariant is one guarded value of a property: the value the
// property has in configurations satisfying Cond (nil = always).
type LiftedVariant struct {
	Cond   *featmodel.Expr
	Value  dts.Value
	Origin dts.Origin
}

// LiftedProperty is a property of the merged tree: a name with one
// variant per delta write that can reach a configuration.
type LiftedProperty struct {
	Name     string
	Variants []*LiftedVariant
}

// LiftedLabel is a guarded node label.
type LiftedLabel struct {
	Cond  *featmodel.Expr
	Label string
}

// LiftedNode is a node of the merged tree, present in configurations
// satisfying Cond (nil = always).
type LiftedNode struct {
	Name     string
	Cond     *featmodel.Expr
	Labels   []LiftedLabel
	Props    []*LiftedProperty
	Children []*LiftedNode
	Origin   dts.Origin
}

// LiftedConflict records a delta-application failure or ambiguity that
// occurs in the configurations satisfying Cond (nil = every
// configuration): a missing target, a double-add, an unordered write
// pair. The enumerative pipeline surfaces these as Apply/Order errors
// per product; the lifted pipeline discharges each conflict with one
// SAT query against the feature model and reports only the reachable
// ones.
type LiftedConflict struct {
	Cond     *featmodel.Expr
	Delta    string // delta whose application fails (first of the pair, for ambiguities)
	Location string // contested target path / property
	Msg      string // enumerative error text
}

func (c *LiftedConflict) String() string {
	cond := "always"
	if c.Cond != nil {
		cond = "when " + c.Cond.String()
	}
	return fmt.Sprintf("delta %s: %s: %s (%s)", c.Delta, c.Location, c.Msg, cond)
}

// LiftedTree is the variability-aware merged tree for a whole product
// line: the union of every product's tree with presence conditions,
// plus the application conflicts that enumeration would hit.
type LiftedTree struct {
	Root        *LiftedNode
	MemReserves []dts.MemReserve // deltas cannot edit memreserves; copied from the core
	Conflicts   []LiftedConflict
	Order       []string // delta application order used for the merge
}

// Lift applies every delta of the set — regardless of activation — to a
// lifted copy of the core tree, guarding each edit with the delta's
// activation condition. Deltas are ordered by one topological sort of
// the full after-relation with declaration-order tie-breaking, the
// same rule Order uses per configuration; any order consistent with
// the full relation is consistent with each configuration's restriction
// of it. A cycle anywhere in the after-relation is an error (slightly
// stricter than per-product ordering, which only sees cycles among
// co-active deltas).
//
// Ambiguity detection is lifted too: unordered delta pairs contending
// for a write location become Conflicts guarded by the conjunction of
// the pair's activation conditions. Orderedness is judged on the full
// after-relation, so a pair ordered only through an inactive
// intermediary counts as ordered here; the declaration-order tie-break
// keeps application deterministic in those configurations.
func (s *Set) Lift(core *dts.Tree) (*LiftedTree, error) {
	ordered, err := s.orderAll()
	if err != nil {
		return nil, err
	}
	lt := &LiftedTree{
		Root:        liftConcreteNode(core.Root),
		MemReserves: append([]dts.MemReserve(nil), core.MemReserves...),
	}
	for _, d := range ordered {
		lt.Order = append(lt.Order, d.Name)
		lt.applyLifted(d)
	}
	lt.recordAmbiguities(s, ordered)
	return lt, nil
}

// orderAll topologically sorts all deltas over the full after-relation
// with declaration-order tie-breaking.
func (s *Set) orderAll() ([]*Delta, error) {
	pos := make(map[string]int, len(s.Deltas))
	for i, d := range s.Deltas {
		pos[d.Name] = i
	}
	succ := make(map[string][]string)
	indeg := make(map[string]int)
	for _, d := range s.Deltas {
		indeg[d.Name] += 0
		for _, dep := range d.After {
			succ[dep] = append(succ[dep], d.Name)
			indeg[d.Name]++
		}
	}
	var ready []string
	for _, d := range s.Deltas {
		if indeg[d.Name] == 0 {
			ready = append(ready, d.Name)
		}
	}
	var out []*Delta
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
		next := ready[0]
		ready = ready[1:]
		out = append(out, s.byName[next])
		for _, m := range succ[next] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(out) != len(s.Deltas) {
		var cyc []string
		for _, d := range s.Deltas {
			if indeg[d.Name] > 0 {
				cyc = append(cyc, d.Name)
			}
		}
		return nil, &CycleError{Names: cyc}
	}
	return out, nil
}

// recordAmbiguities lifts checkAmbiguity: every unordered pair with a
// write conflict becomes a Conflict guarded by both activation
// conditions.
func (lt *LiftedTree) recordAmbiguities(s *Set, ordered []*Delta) {
	reach := make(map[string]map[string]bool, len(s.Deltas))
	var visit func(name string) map[string]bool
	visit = func(name string) map[string]bool {
		if r, ok := reach[name]; ok {
			return r
		}
		r := make(map[string]bool)
		reach[name] = r
		for _, dep := range s.byName[name].After {
			r[dep] = true
			for k := range visit(dep) {
				r[k] = true
			}
		}
		return r
	}
	for _, d := range s.Deltas {
		visit(d.Name)
	}
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			a, b := ordered[i], ordered[j]
			if reach[a.Name][b.Name] || reach[b.Name][a.Name] {
				continue
			}
			if loc := writeConflict(a, b); loc != "" {
				lt.Conflicts = append(lt.Conflicts, LiftedConflict{
					Cond:     featmodel.AndOpt(a.When, b.When),
					Delta:    a.Name,
					Location: loc,
					Msg: fmt.Sprintf("%s and %s both write %s with no order between them",
						a.Name, b.Name, loc),
				})
			}
		}
	}
}

// liftConcreteNode converts a concrete (core) node into an
// unconditional lifted node.
func liftConcreteNode(n *dts.Node) *LiftedNode {
	ln := &LiftedNode{Name: n.Name, Origin: n.Origin}
	if n.Label != "" {
		ln.Labels = []LiftedLabel{{Label: n.Label}}
	}
	for _, p := range n.Properties {
		ln.Props = append(ln.Props, &LiftedProperty{
			Name:     p.Name,
			Variants: []*LiftedVariant{{Value: p.Value.Clone(), Origin: p.Origin}},
		})
	}
	for _, c := range n.Children {
		ln.Children = append(ln.Children, liftConcreteNode(c))
	}
	return ln
}

// liftFragmentNode converts a delta fragment into a lifted node whose
// whole subtree is guarded by cond and stamped with the delta name.
func liftFragmentNode(n *dts.Node, cond *featmodel.Expr, deltaName string) *LiftedNode {
	origin := n.Origin
	origin.Delta = deltaName
	ln := &LiftedNode{Name: n.Name, Cond: cond, Origin: origin}
	if n.Label != "" {
		ln.Labels = []LiftedLabel{{Cond: cond, Label: n.Label}}
	}
	for _, p := range n.Properties {
		po := p.Origin
		po.Delta = deltaName
		ln.Props = append(ln.Props, &LiftedProperty{
			Name:     p.Name,
			Variants: []*LiftedVariant{{Cond: cond, Value: p.Value.Clone(), Origin: po}},
		})
	}
	for _, c := range n.Children {
		ln.Children = append(ln.Children, liftFragmentNode(c, cond, deltaName))
	}
	return ln
}

// Prop returns the lifted property with the given name, or nil.
func (ln *LiftedNode) Prop(name string) *LiftedProperty {
	for _, p := range ln.Props {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Child returns the direct child with the given name, or nil.
func (ln *LiftedNode) Child(name string) *LiftedNode {
	for _, c := range ln.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Walk visits the lifted subtree in depth-first pre-order with dts path
// conventions. Returning false stops the walk.
func (ln *LiftedNode) Walk(fn func(path string, n *LiftedNode) bool) {
	var rec func(path string, n *LiftedNode) bool
	rec = func(path string, n *LiftedNode) bool {
		if !fn(path, n) {
			return false
		}
		prefix := path
		if prefix == "/" {
			prefix = ""
		}
		for _, c := range n.Children {
			if !rec(prefix+"/"+c.Name, c) {
				return false
			}
		}
		return true
	}
	start := "/"
	if ln.Name != "/" {
		start = "/" + ln.Name
	}
	rec(start, ln)
}

// resolveLifted finds a target in the merged tree: "/" or an absolute
// path directly, "&label" through the lifted node labels, a bare name
// as the first depth-first match — the same rules resolveTarget uses on
// concrete trees. Bare names and labels resolve against the union
// tree, so a name that different configurations would resolve to
// different nodes resolves here to the union's first match; conditional
// presence of the match is handled by the caller through the
// missing-target conflict. (A label whose own presence is conditional
// is approximated by its node's condition.)
func (lt *LiftedTree) resolveLifted(target string) (*LiftedNode, string) {
	if target == "/" || strings.HasPrefix(target, "/") {
		if target == "/" || target == "" {
			return lt.Root, "/"
		}
		parts := strings.Split(strings.Trim(target, "/"), "/")
		n := lt.Root
		for _, p := range parts {
			n = n.Child(p)
			if n == nil {
				return nil, target
			}
		}
		return n, target
	}
	var found *LiftedNode
	var foundPath string
	if label, isRef := strings.CutPrefix(target, "&"); isRef {
		lt.Root.Walk(func(path string, n *LiftedNode) bool {
			for _, l := range n.Labels {
				if l.Label == label {
					found, foundPath = n, path
					return false
				}
			}
			return true
		})
		return found, foundPath
	}
	lt.Root.Walk(func(path string, n *LiftedNode) bool {
		if n.Name == target {
			found, foundPath = n, path
			return false
		}
		return true
	})
	return found, foundPath
}

func (lt *LiftedTree) conflict(cond *featmodel.Expr, deltaName, location, format string, args ...interface{}) {
	lt.Conflicts = append(lt.Conflicts, LiftedConflict{
		Cond:     cond,
		Delta:    deltaName,
		Location: location,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// applyLifted performs one delta's operations on the merged tree,
// guarded by the delta's activation condition. Each branch mirrors the
// corresponding case of applyDelta; where the concrete branch fails
// with an ApplyError, the lifted branch records a Conflict guarded by
// the configurations that would hit the failure and carries on, so one
// Lift covers every product.
func (lt *LiftedTree) applyLifted(d *Delta) {
	g := d.When
	for _, op := range d.Ops {
		target, loc := lt.resolveLifted(op.Target)
		if target == nil {
			lt.conflict(g, d.Name, op.Target, "%v %s: target node not found", op.Kind, op.Target)
			continue
		}
		if target.Cond != nil {
			// The target exists only conditionally: configurations that
			// activate the delta but not the target fail enumeratively.
			lt.conflict(featmodel.AndOpt(g, featmodel.Not(target.Cond)), d.Name, loc,
				"%v %s: target node not found", op.Kind, op.Target)
		}
		gAbs := featmodel.AndOpt(target.Cond, g)

		switch op.Kind {
		case OpAdds:
			for _, fp := range op.Fragment.Properties {
				if lp := target.Prop(fp.Name); lp != nil && len(lp.Variants) > 0 {
					present, always := orConds(lp.Variants)
					cond := gAbs
					if !always {
						cond = featmodel.AndOpt(gAbs, present)
					}
					lt.conflict(cond, d.Name, loc+"#"+fp.Name,
						"%v %s: property %s already exists", op.Kind, op.Target, fp.Name)
				}
				target.setVariant(fp, gAbs, d.Name, false)
			}
			for _, fc := range op.Fragment.Children {
				if existing := target.Child(fc.Name); existing != nil {
					lt.conflict(featmodel.AndOpt(gAbs, existing.Cond), d.Name, loc+"/"+fc.Name,
						"%v %s: node %s already exists", op.Kind, op.Target, fc.Name)
					existing.Cond = featmodel.OrOpt(existing.Cond, gAbs)
					existing.mergeLifted(fc, gAbs, d.Name)
				} else {
					target.Children = append(target.Children, liftFragmentNode(fc, gAbs, d.Name))
				}
			}

		case OpModifies:
			target.mergeLifted(op.Fragment, gAbs, d.Name)

		case OpRemovesNode:
			if target == lt.Root {
				lt.conflict(g, d.Name, loc, "%v %s: cannot remove the root node", op.Kind, op.Target)
				continue
			}
			lt.removeNode(target, gAbs)

		case OpRemovesProperty:
			lp := target.Prop(op.PropName)
			if lp == nil || len(lp.Variants) == 0 {
				lt.conflict(gAbs, d.Name, loc+"#"+op.PropName,
					"%v %s: property %s not found", op.Kind, op.Target, op.PropName)
				continue
			}
			if present, always := orConds(lp.Variants); !always {
				lt.conflict(featmodel.AndOpt(gAbs, featmodel.Not(present)), d.Name, loc+"#"+op.PropName,
					"%v %s: property %s not found", op.Kind, op.Target, op.PropName)
			}
			restrictVariants(lp, gAbs)
		}
	}
}

// setVariant appends a guarded variant for a fragment property. With
// overwrite (modifies semantics) the previous variants are restricted
// to configurations where the write does not happen; without it
// (adds semantics) they are left alone — the overlap is flagged as a
// Conflict by the caller and the merged value there is don't-care.
func (ln *LiftedNode) setVariant(p *dts.Property, cond *featmodel.Expr, deltaName string, overwrite bool) {
	lp := ln.Prop(p.Name)
	if lp == nil {
		lp = &LiftedProperty{Name: p.Name}
		ln.Props = append(ln.Props, lp)
	} else if overwrite {
		restrictVariants(lp, cond)
	}
	origin := p.Origin
	origin.Delta = deltaName
	lp.Variants = append(lp.Variants, &LiftedVariant{Cond: cond, Value: p.Value.Clone(), Origin: origin})
}

// restrictVariants conjoins ¬cond onto every variant; an unconditional
// restriction (cond == nil) erases them.
func restrictVariants(lp *LiftedProperty, cond *featmodel.Expr) {
	if cond == nil {
		lp.Variants = nil
		return
	}
	not := featmodel.Not(cond)
	for _, v := range lp.Variants {
		v.Cond = featmodel.AndOpt(v.Cond, not)
	}
}

// mergeLifted is Node.Merge lifted under a guard: properties are
// overwritten in the configurations satisfying cond, children merged
// recursively (widening their presence) or appended guarded, and
// delete markers replayed as guarded removals.
func (ln *LiftedNode) mergeLifted(frag *dts.Node, cond *featmodel.Expr, deltaName string) {
	if frag.Label != "" {
		ln.Labels = append(ln.Labels, LiftedLabel{Cond: cond, Label: frag.Label})
	}
	for _, name := range frag.DeletedProperties() {
		if lp := ln.Prop(name); lp != nil {
			restrictVariants(lp, cond)
		}
	}
	for _, name := range frag.DeletedNodes() {
		if c := ln.Child(name); c != nil {
			restrictNode(c, cond)
		}
	}
	for _, p := range frag.Properties {
		ln.setVariant(p, cond, deltaName, true)
	}
	for _, c := range frag.Children {
		if mine := ln.Child(c.Name); mine != nil {
			mine.Cond = featmodel.OrOpt(mine.Cond, cond)
			mine.mergeLifted(c, cond, deltaName)
		} else {
			ln.Children = append(ln.Children, liftFragmentNode(c, cond, deltaName))
		}
	}
	if deltaName != "" {
		// Advisory only: reports re-derive the witness product
		// concretely, which regenerates exact blame.
		ln.Origin.Delta = deltaName
	}
}

// removeNode restricts a node's presence (and its whole subtree's) to
// configurations where the removal is inactive; an unconditional
// removal detaches the node.
func (lt *LiftedTree) removeNode(target *LiftedNode, cond *featmodel.Expr) {
	if cond == nil {
		lt.Root.Walk(func(_ string, n *LiftedNode) bool {
			for i, c := range n.Children {
				if c == target {
					n.Children = append(n.Children[:i], n.Children[i+1:]...)
					return false
				}
			}
			return true
		})
		return
	}
	restrictNode(target, cond)
}

// restrictNode conjoins ¬cond onto the node and every descendant, so
// descendants of a removed node stay absent even if a later delta
// re-creates the node name.
func restrictNode(ln *LiftedNode, cond *featmodel.Expr) {
	not := featmodel.Not(cond)
	var rec func(n *LiftedNode)
	rec = func(n *LiftedNode) {
		n.Cond = featmodel.AndOpt(n.Cond, not)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(ln)
}

// orConds disjoins the variants' presence conditions; always reports
// that some variant is unconditional (so the property always exists).
func orConds(vs []*LiftedVariant) (cond *featmodel.Expr, always bool) {
	if len(vs) == 0 {
		return nil, false
	}
	cond = vs[0].Cond
	for _, v := range vs[1:] {
		cond = featmodel.OrOpt(cond, v.Cond)
	}
	return cond, cond == nil
}

// Project materializes the concrete tree of one configuration from the
// merged tree: nodes whose presence condition holds, each property
// taking its last variant whose guard holds (later deltas append later,
// so last-true is last-writer-wins, matching enumerative application
// order). Subtrees of absent nodes are skipped wholesale. Project is
// the semantic ground truth the differential tests compare against
// Set.Apply; the lifted checkers never project — they query guards
// symbolically.
func (lt *LiftedTree) Project(cfg featmodel.Configuration) *dts.Tree {
	sel := map[string]bool(cfg)
	return &dts.Tree{
		Root:        projectNode(lt.Root, sel),
		MemReserves: append([]dts.MemReserve(nil), lt.MemReserves...),
	}
}

func projectNode(ln *LiftedNode, sel map[string]bool) *dts.Node {
	n := &dts.Node{Name: ln.Name, Origin: ln.Origin}
	for _, l := range ln.Labels {
		if featmodel.EvalOpt(l.Cond, sel) {
			n.Label = l.Label
		}
	}
	for _, lp := range ln.Props {
		var chosen *LiftedVariant
		for _, v := range lp.Variants {
			if featmodel.EvalOpt(v.Cond, sel) {
				chosen = v
			}
		}
		if chosen != nil {
			n.Properties = append(n.Properties, &dts.Property{
				Name: lp.Name, Value: chosen.Value.Clone(), Origin: chosen.Origin,
			})
		}
	}
	for _, c := range ln.Children {
		if featmodel.EvalOpt(c.Cond, sel) {
			n.Children = append(n.Children, projectNode(c, sel))
		}
	}
	return n
}

// ActiveConflicts returns the conflicts whose guard holds under the
// configuration — the lifted image of the ApplyError / AmbiguityError
// the enumerative pipeline would raise for that product.
func (lt *LiftedTree) ActiveConflicts(cfg featmodel.Configuration) []LiftedConflict {
	sel := map[string]bool(cfg)
	var out []LiftedConflict
	for _, c := range lt.Conflicts {
		if featmodel.EvalOpt(c.Cond, sel) {
			out = append(out, c)
		}
	}
	return out
}

// Dump renders the merged tree — structure, guards, values, origins,
// conflicts and application order — as deterministic text. The check
// cache folds this into its content address for lifted runs: two
// product lines whose merged trees dump identically have identical
// lifted findings.
func (lt *LiftedTree) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "order %q\n", lt.Order)
	for _, mr := range lt.MemReserves {
		fmt.Fprintf(&b, "memreserve 0x%x 0x%x\n", mr.Address, mr.Size)
	}
	cond := func(e *featmodel.Expr) string {
		if e == nil {
			return "-"
		}
		return e.String()
	}
	lt.Root.Walk(func(path string, n *LiftedNode) bool {
		fmt.Fprintf(&b, "node %q cond %q origin %q\n", path, cond(n.Cond), n.Origin.String())
		for _, l := range n.Labels {
			fmt.Fprintf(&b, "  label %q cond %q\n", l.Label, cond(l.Cond))
		}
		for _, p := range n.Props {
			fmt.Fprintf(&b, "  prop %q\n", p.Name)
			for _, v := range p.Variants {
				fmt.Fprintf(&b, "    variant cond %q value %q origin %q\n",
					cond(v.Cond), dts.FormatValue(v.Value), v.Origin.String())
			}
		}
		return true
	})
	for _, c := range lt.Conflicts {
		fmt.Fprintf(&b, "conflict cond %q delta %q loc %q msg %q\n",
			cond(c.Cond), c.Delta, c.Location, c.Msg)
	}
	return b.String()
}
