package delta

import (
	"fmt"
	"strings"

	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// Parse reads a delta-module file in the syntax of the paper's
// Listing 4:
//
//	delta d1 after d3 when veth0 {
//	    adds binding vEthernet {
//	        veth0@80000000 {
//	            compatible = "veth";
//	            reg = <0x80000000 0x10000000>;
//	            id = <0>;
//	        };
//	    }
//	}
//
//	delta d3 when (veth0 || veth1) {
//	    modifies / {
//	        #address-cells = <1>;
//	        #size-cells = <1>;
//	        vEthernet { };
//	    }
//	}
//
// plus removal operations:
//
//	delta d5 when minimal {
//	    removes node uart@30000000;
//	    removes property memory@40000000 some-prop;
//	}
//
// Operation payloads are full DTS node bodies parsed by internal/dts.
func Parse(file, src string) (*Set, error) {
	sc := &scanner{file: file, src: src, line: 1}
	var deltas []*Delta
	for {
		sc.skipSpace()
		if sc.eof() {
			break
		}
		d, err := sc.parseDelta()
		if err != nil {
			return nil, err
		}
		deltas = append(deltas, d)
	}
	return NewSet(deltas)
}

type scanner struct {
	file string
	src  string
	pos  int
	line int
}

func (s *scanner) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", s.file, s.line, fmt.Sprintf(format, args...))
}

func (s *scanner) eof() bool { return s.pos >= len(s.src) }

func (s *scanner) skipSpace() {
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		switch {
		case c == '\n':
			s.line++
			s.pos++
		case c == ' ' || c == '\t' || c == '\r':
			s.pos++
		case c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '/':
			for s.pos < len(s.src) && s.src[s.pos] != '\n' {
				s.pos++
			}
		case c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '*':
			s.pos += 2
			for s.pos+1 < len(s.src) && !(s.src[s.pos] == '*' && s.src[s.pos+1] == '/') {
				if s.src[s.pos] == '\n' {
					s.line++
				}
				s.pos++
			}
			s.pos += 2
		default:
			return
		}
	}
}

// word reads a whitespace/brace/comma/semicolon-delimited token.
func (s *scanner) word() string {
	s.skipSpace()
	start := s.pos
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
			c == '{' || c == '}' || c == ',' || c == ';' {
			break
		}
		s.pos++
	}
	return s.src[start:s.pos]
}

func (s *scanner) expectByte(b byte) error {
	s.skipSpace()
	if s.eof() || s.src[s.pos] != b {
		found := "end of file"
		if !s.eof() {
			found = fmt.Sprintf("%q", string(s.src[s.pos]))
		}
		return s.errf("expected %q, found %s", string(b), found)
	}
	s.pos++
	return nil
}

func (s *scanner) peekByte() byte {
	s.skipSpace()
	if s.eof() {
		return 0
	}
	return s.src[s.pos]
}

// balancedBraces consumes a "{ ... }" block and returns it including
// the braces, tracking strings and comments.
func (s *scanner) balancedBraces() (string, error) {
	if err := s.expectByte('{'); err != nil {
		return "", err
	}
	start := s.pos - 1
	depth := 1
	for s.pos < len(s.src) && depth > 0 {
		c := s.src[s.pos]
		switch c {
		case '\n':
			s.line++
			s.pos++
		case '{':
			depth++
			s.pos++
		case '}':
			depth--
			s.pos++
		case '"':
			s.pos++
			for s.pos < len(s.src) && s.src[s.pos] != '"' {
				if s.src[s.pos] == '\\' {
					s.pos++
				}
				s.pos++
			}
			s.pos++
		case '/':
			if s.pos+1 < len(s.src) && s.src[s.pos+1] == '/' {
				for s.pos < len(s.src) && s.src[s.pos] != '\n' {
					s.pos++
				}
			} else if s.pos+1 < len(s.src) && s.src[s.pos+1] == '*' {
				s.pos += 2
				for s.pos+1 < len(s.src) && !(s.src[s.pos] == '*' && s.src[s.pos+1] == '/') {
					if s.src[s.pos] == '\n' {
						s.line++
					}
					s.pos++
				}
				s.pos += 2
			} else {
				s.pos++
			}
		default:
			s.pos++
		}
	}
	if depth != 0 {
		return "", s.errf("unterminated block")
	}
	return s.src[start:s.pos], nil
}

func (s *scanner) parseDelta() (*Delta, error) {
	if w := s.word(); w != "delta" {
		return nil, s.errf("expected 'delta', found %q", w)
	}
	name := s.word()
	if name == "" {
		return nil, s.errf("expected delta name")
	}
	d := &Delta{Name: name}

	for {
		s.skipSpace()
		if s.peekByte() == '{' {
			break
		}
		switch kw := s.word(); kw {
		case "after":
			for {
				dep := s.word()
				if dep == "" {
					return nil, s.errf("expected delta name after 'after'")
				}
				d.After = append(d.After, dep)
				if s.peekByte() != ',' {
					break
				}
				s.pos++ // ','
			}
		case "when":
			exprText, err := s.untilBrace()
			if err != nil {
				return nil, err
			}
			expr, err := featmodel.ParseExpr(strings.TrimSpace(exprText))
			if err != nil {
				return nil, s.errf("invalid when clause: %v", err)
			}
			d.When = expr
		case "":
			return nil, s.errf("unexpected end of file in delta %s", name)
		default:
			return nil, s.errf("unexpected %q in delta header", kw)
		}
	}

	if err := s.expectByte('{'); err != nil {
		return nil, err
	}
	for {
		s.skipSpace()
		if s.peekByte() == '}' {
			s.pos++
			break
		}
		op, err := s.parseOperation(name)
		if err != nil {
			return nil, err
		}
		d.Ops = append(d.Ops, op)
	}
	return d, nil
}

// untilBrace captures raw text up to (excluding) the next '{' at
// parenthesis depth 0.
func (s *scanner) untilBrace() (string, error) {
	s.skipSpace()
	start := s.pos
	depth := 0
	for s.pos < len(s.src) {
		switch s.src[s.pos] {
		case '(':
			depth++
		case ')':
			depth--
		case '{':
			if depth == 0 {
				return s.src[start:s.pos], nil
			}
		case '\n':
			s.line++
		}
		s.pos++
	}
	return "", s.errf("expected '{' after when clause")
}

func (s *scanner) parseOperation(deltaName string) (Operation, error) {
	switch kw := s.word(); kw {
	case "adds":
		if w := s.word(); w != "binding" {
			return Operation{}, s.errf("expected 'binding' after 'adds', found %q", w)
		}
		target := s.word()
		if target == "" && s.peekByte() == '{' {
			return Operation{}, s.errf("expected target node after 'adds binding'")
		}
		body, err := s.balancedBraces()
		if err != nil {
			return Operation{}, err
		}
		frag, err := dts.ParseFragment(s.file, target, body)
		if err != nil {
			return Operation{}, fmt.Errorf("delta %s: %w", deltaName, err)
		}
		return Operation{Kind: OpAdds, Target: target, Fragment: frag}, nil

	case "modifies":
		target := s.word()
		if target == "" {
			if s.peekByte() == '/' { // bare root target
				s.pos++
				target = "/"
			} else {
				return Operation{}, s.errf("expected target node after 'modifies'")
			}
		}
		body, err := s.balancedBraces()
		if err != nil {
			return Operation{}, err
		}
		frag, err := dts.ParseFragment(s.file, target, body)
		if err != nil {
			return Operation{}, fmt.Errorf("delta %s: %w", deltaName, err)
		}
		return Operation{Kind: OpModifies, Target: target, Fragment: frag}, nil

	case "removes":
		switch what := s.word(); what {
		case "node":
			target := s.word()
			if target == "" {
				return Operation{}, s.errf("expected target after 'removes node'")
			}
			s.optionalSemi()
			return Operation{Kind: OpRemovesNode, Target: target}, nil
		case "property":
			target := s.word()
			prop := s.word()
			if target == "" || prop == "" {
				return Operation{}, s.errf("expected 'removes property <node> <name>'")
			}
			s.optionalSemi()
			return Operation{Kind: OpRemovesProperty, Target: target, PropName: prop}, nil
		default:
			return Operation{}, s.errf("expected 'node' or 'property' after 'removes', found %q", what)
		}

	case "":
		return Operation{}, s.errf("unexpected end of file in delta body")
	default:
		return Operation{}, s.errf("unknown operation %q", kw)
	}
}

func (s *scanner) optionalSemi() {
	if s.peekByte() == ';' {
		s.pos++
	}
}
