// Package delta implements the delta-oriented programming (DOP) product
// line for DTS files described in Section III-B of the llhsc paper: a
// core-module DTS is refined by delta modules that add, modify and
// remove fragments. Each delta carries an activation condition over
// feature names (the "when" clause) and ordering constraints (the
// "after" clause); applying the active deltas of a configuration in a
// valid topological order yields the product DTS.
//
// Every node and property written by a delta is stamped with the
// delta's name (dts.Origin.Delta), which is how llhsc traces a
// constraint violation back to the delta module that caused it.
package delta

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// OpKind discriminates delta operations.
type OpKind int

// Delta operation kinds.
const (
	// OpAdds introduces new child nodes/properties under a target node
	// ("adds binding <target> { ... }"); the added entries must not
	// already exist.
	OpAdds OpKind = iota + 1
	// OpModifies merges the fragment into an existing target node
	// ("modifies <target> { ... }").
	OpModifies
	// OpRemovesNode deletes a node ("removes node <target>").
	OpRemovesNode
	// OpRemovesProperty deletes a property
	// ("removes property <target> <name>").
	OpRemovesProperty
)

func (k OpKind) String() string {
	switch k {
	case OpAdds:
		return "adds"
	case OpModifies:
		return "modifies"
	case OpRemovesNode:
		return "removes node"
	case OpRemovesProperty:
		return "removes property"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Operation is one edit performed by a delta.
type Operation struct {
	Kind     OpKind
	Target   string    // node path ("/" = root) or bare node name
	Fragment *dts.Node // payload for OpAdds / OpModifies
	PropName string    // for OpRemovesProperty
}

// Delta is one delta module.
type Delta struct {
	Name  string
	After []string        // must be applied after these deltas (when active)
	When  *featmodel.Expr // activation condition; nil = always active
	Ops   []Operation
}

// Active reports whether the delta is activated by the configuration.
func (d *Delta) Active(cfg featmodel.Configuration) bool {
	if d.When == nil {
		return true
	}
	return d.When.Eval(map[string]bool(cfg))
}

// Set is a collection of delta modules forming a product line.
type Set struct {
	Deltas []*Delta
	byName map[string]*Delta
}

// NewSet validates and indexes the deltas: names must be unique and
// every "after" reference must resolve.
func NewSet(deltas []*Delta) (*Set, error) {
	s := &Set{Deltas: deltas, byName: make(map[string]*Delta, len(deltas))}
	for _, d := range deltas {
		if d.Name == "" {
			return nil, fmt.Errorf("delta: module with empty name")
		}
		if _, dup := s.byName[d.Name]; dup {
			return nil, fmt.Errorf("delta: duplicate module name %q", d.Name)
		}
		s.byName[d.Name] = d
	}
	for _, d := range deltas {
		for _, dep := range d.After {
			if _, ok := s.byName[dep]; !ok {
				return nil, fmt.Errorf("delta: %s is after unknown delta %q", d.Name, dep)
			}
		}
	}
	return s, nil
}

// Delta returns the module with the given name, or nil.
func (s *Set) Delta(name string) *Delta { return s.byName[name] }

// Active returns the deltas activated by the configuration, in
// declaration order.
func (s *Set) Active(cfg featmodel.Configuration) []*Delta {
	var out []*Delta
	for _, d := range s.Deltas {
		if d.Active(cfg) {
			out = append(out, d)
		}
	}
	return out
}

// CycleError reports a cyclic "after" dependency among active deltas.
type CycleError struct {
	Names []string
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("delta: cyclic after-dependency among %v", e.Names)
}

// AmbiguityError reports two active deltas that write the same location
// without an ordering constraint between them, making the product
// depend on arbitrary application order.
type AmbiguityError struct {
	A, B     string // delta names
	Location string // contested path/property
}

func (e *AmbiguityError) Error() string {
	return fmt.Sprintf("delta: %s and %s both write %s with no order between them",
		e.A, e.B, e.Location)
}

// Order topologically sorts the active deltas for the configuration
// according to their after-constraints (restricted to active deltas, as
// the paper specifies). Ties are broken by declaration order, keeping
// application deterministic. It returns a CycleError for cyclic
// constraints and an AmbiguityError when unordered deltas contend for
// the same write location.
func (s *Set) Order(cfg featmodel.Configuration) ([]*Delta, error) {
	active := s.Active(cfg)
	activeSet := make(map[string]bool, len(active))
	pos := make(map[string]int, len(active))
	for i, d := range active {
		activeSet[d.Name] = true
		pos[d.Name] = i
	}

	// edges dep -> d for active deps
	succ := make(map[string][]string)
	indeg := make(map[string]int)
	for _, d := range active {
		indeg[d.Name] += 0
		for _, dep := range d.After {
			if activeSet[dep] {
				succ[dep] = append(succ[dep], d.Name)
				indeg[d.Name]++
			}
		}
	}

	// Kahn's algorithm with declaration-order tie-breaking
	var ready []string
	for _, d := range active {
		if indeg[d.Name] == 0 {
			ready = append(ready, d.Name)
		}
	}
	var orderNames []string
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
		next := ready[0]
		ready = ready[1:]
		orderNames = append(orderNames, next)
		for _, m := range succ[next] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(orderNames) != len(active) {
		var cyc []string
		for _, d := range active {
			if indeg[d.Name] > 0 {
				cyc = append(cyc, d.Name)
			}
		}
		return nil, &CycleError{Names: cyc}
	}

	if err := s.checkAmbiguity(active, orderNames); err != nil {
		return nil, err
	}

	out := make([]*Delta, len(orderNames))
	for i, n := range orderNames {
		out[i] = s.byName[n]
	}
	return out, nil
}

// checkAmbiguity verifies that any two active deltas writing the same
// location are ordered by the transitive after-relation.
func (s *Set) checkAmbiguity(active []*Delta, orderNames []string) error {
	// transitive reachability over after-edges among active deltas
	activeSet := make(map[string]bool, len(active))
	for _, d := range active {
		activeSet[d.Name] = true
	}
	reach := make(map[string]map[string]bool, len(active))
	var visit func(name string) map[string]bool
	visit = func(name string) map[string]bool {
		if r, ok := reach[name]; ok {
			return r
		}
		r := make(map[string]bool)
		reach[name] = r
		for _, dep := range s.byName[name].After {
			if !activeSet[dep] {
				continue
			}
			r[dep] = true
			for k := range visit(dep) {
				r[k] = true
			}
		}
		return r
	}
	for _, d := range active {
		visit(d.Name)
	}
	ordered := func(a, b string) bool { return reach[a][b] || reach[b][a] }

	for i := 0; i < len(active); i++ {
		for j := i + 1; j < len(active); j++ {
			a, b := active[i], active[j]
			if ordered(a.Name, b.Name) {
				continue
			}
			if loc := writeConflict(a, b); loc != "" {
				return &AmbiguityError{A: a.Name, B: b.Name, Location: loc}
			}
		}
	}
	return nil
}

// writeConflict returns a contested location written by both deltas, or
// "" when their write sets are disjoint.
func writeConflict(a, b *Delta) string {
	wa := writeSet(a)
	wb := writeSet(b)
	var keys []string
	for k := range wa {
		if wb[k] {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	return keys[0]
}

// writeSet lists the locations a delta writes: "path#prop" for property
// writes and "path/child" for node creation/removal.
func writeSet(d *Delta) map[string]bool {
	out := make(map[string]bool)
	for _, op := range d.Ops {
		switch op.Kind {
		case OpAdds, OpModifies:
			var collect func(prefix string, n *dts.Node)
			collect = func(prefix string, n *dts.Node) {
				for _, p := range n.Properties {
					out[prefix+"#"+p.Name] = true
				}
				for _, c := range n.Children {
					cp := prefix + "/" + c.Name
					out[cp] = true
					collect(cp, c)
				}
			}
			collect(op.Target, op.Fragment)
		case OpRemovesNode:
			out[op.Target] = true
		case OpRemovesProperty:
			out[op.Target+"#"+op.PropName] = true
		}
	}
	return out
}

// resolveTarget finds the node a target string refers to: "/" or an
// absolute path is looked up directly, "&label" resolves through the
// node labels (the form FromOverlay emits for overlay fragments), and a
// bare name matches the first node with that name in depth-first order.
func resolveTarget(t *dts.Tree, target string) *dts.Node {
	if target == "/" || strings.HasPrefix(target, "/") {
		return t.Lookup(target)
	}
	if strings.HasPrefix(target, "&") {
		return t.LookupLabel(target[1:])
	}
	var found *dts.Node
	t.Root.Walk(func(_ string, n *dts.Node) bool {
		if n.Name == target {
			found = n
			return false
		}
		return true
	})
	return found
}

// ApplyError reports a failed delta operation.
type ApplyError struct {
	Delta  string
	Op     OpKind
	Target string
	Msg    string
}

func (e *ApplyError) Error() string {
	return fmt.Sprintf("delta %s: %v %s: %s", e.Delta, e.Op, e.Target, e.Msg)
}

// Apply applies the active deltas for cfg, in a valid order, to a clone
// of the core tree and returns the product DTS together with the
// applied delta names (the trace used in reports).
func (s *Set) Apply(core *dts.Tree, cfg featmodel.Configuration) (*dts.Tree, []string, error) {
	return s.ApplyContext(context.Background(), core, cfg, 0)
}

// StepLimitError reports that delta application exceeded maxOps.
type StepLimitError struct {
	Limit int
}

func (e *StepLimitError) Error() string {
	return fmt.Sprintf("delta: application exceeded %d operations", e.Limit)
}

// ApplyContext is Apply under a context and an operation cap: maxOps
// bounds the total number of delta operations applied (0 = unlimited),
// and the context is polled between deltas. On a stop it returns the
// trace so far with ctx.Err() or a *StepLimitError.
func (s *Set) ApplyContext(ctx context.Context, core *dts.Tree, cfg featmodel.Configuration, maxOps int) (*dts.Tree, []string, error) {
	ordered, err := s.Order(cfg)
	if err != nil {
		return nil, nil, err
	}
	tree := core.Clone()
	var trace []string
	ops := 0
	for _, d := range ordered {
		if err := ctx.Err(); err != nil {
			return nil, trace, err
		}
		ops += len(d.Ops)
		if maxOps > 0 && ops > maxOps {
			return nil, trace, &StepLimitError{Limit: maxOps}
		}
		if err := applyDelta(tree, d); err != nil {
			return nil, trace, err
		}
		trace = append(trace, d.Name)
	}
	return tree, trace, nil
}

func applyDelta(tree *dts.Tree, d *Delta) error {
	for _, op := range d.Ops {
		fail := func(format string, args ...interface{}) error {
			return &ApplyError{Delta: d.Name, Op: op.Kind, Target: op.Target,
				Msg: fmt.Sprintf(format, args...)}
		}
		switch op.Kind {
		case OpAdds:
			target := resolveTarget(tree, op.Target)
			if target == nil {
				return fail("target node not found")
			}
			for _, p := range op.Fragment.Properties {
				if target.Property(p.Name) != nil {
					return fail("property %s already exists", p.Name)
				}
				np := p.Clone()
				np.Origin.Delta = d.Name
				target.SetProperty(np)
			}
			for _, c := range op.Fragment.Children {
				if target.Child(c.Name) != nil {
					return fail("node %s already exists", c.Name)
				}
				nc := c.Clone()
				stampDelta(nc, d.Name)
				target.Children = append(target.Children, nc)
			}

		case OpModifies:
			target := resolveTarget(tree, op.Target)
			if target == nil {
				return fail("target node not found")
			}
			frag := op.Fragment.Clone()
			stampDelta(frag, d.Name)
			frag.Name = target.Name
			target.Merge(frag)

		case OpRemovesNode:
			target := resolveTarget(tree, op.Target)
			if target == nil {
				return fail("target node not found")
			}
			if target == tree.Root {
				return fail("cannot remove the root node")
			}
			removed := false
			tree.Root.Walk(func(_ string, n *dts.Node) bool {
				for _, c := range n.Children {
					if c == target {
						n.RemoveChild(c.Name)
						removed = true
						return false
					}
				}
				return true
			})
			if !removed {
				return fail("target node not found")
			}

		case OpRemovesProperty:
			target := resolveTarget(tree, op.Target)
			if target == nil {
				return fail("target node not found")
			}
			if !target.RemoveProperty(op.PropName) {
				return fail("property %s not found", op.PropName)
			}
		}
	}
	return nil
}

func stampDelta(n *dts.Node, name string) {
	n.Origin.Delta = name
	for _, p := range n.Properties {
		p.Origin.Delta = name
	}
	for _, c := range n.Children {
		stampDelta(c, name)
	}
}
