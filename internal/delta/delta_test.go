package delta

import (
	"errors"
	"strings"
	"testing"

	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// listing4 is the paper's Listing 4 delta set (d2's node renamed to
// veth1@70000000; the listing's "veth0@70000000" under "when veth1" is
// an apparent typo — see EXPERIMENTS.md E4).
const listing4 = `
delta d1 after d3 when veth0 {
    adds binding vEthernet {
        veth0@80000000 {
            compatible = "veth";
            reg = <0x80000000 0x10000000>;
            id = <0>;
        };
    }
}

delta d2 after d3 when veth1 {
    adds binding vEthernet {
        veth1@70000000 {
            compatible = "veth";
            reg = <0x70000000 0x10000000>;
            id = <1>;
        };
    }
}

delta d3 when (veth0 || veth1) {
    modifies / {
        #address-cells = <1>;
        #size-cells = <1>;
        vEthernet { };
    }
}

delta d4 after d3 when memory {
    modifies memory@40000000 {
        reg = <0x40000000 0x20000000
               0x60000000 0x20000000>;
    }
}
`

const coreDTS = `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;

	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};

	uart0: uart@20000000 {
		compatible = "ns16550a";
		reg = <0x0 0x20000000 0x0 0x1000>;
	};
};
`

func mustSet(t *testing.T, src string) *Set {
	t.Helper()
	s, err := Parse("deltas", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func mustTree(t *testing.T, src string) *dts.Tree {
	t.Helper()
	tree, err := dts.Parse("core.dts", src)
	if err != nil {
		t.Fatalf("parse DTS: %v", err)
	}
	return tree
}

func TestParseListing4(t *testing.T) {
	s := mustSet(t, listing4)
	if len(s.Deltas) != 4 {
		t.Fatalf("deltas = %d, want 4", len(s.Deltas))
	}
	d1 := s.Delta("d1")
	if d1 == nil || len(d1.After) != 1 || d1.After[0] != "d3" {
		t.Errorf("d1 = %+v", d1)
	}
	if d1.When == nil || d1.When.String() != "veth0" {
		t.Errorf("d1 when = %v", d1.When)
	}
	if len(d1.Ops) != 1 || d1.Ops[0].Kind != OpAdds || d1.Ops[0].Target != "vEthernet" {
		t.Errorf("d1 ops = %+v", d1.Ops)
	}
	veth := d1.Ops[0].Fragment.Child("veth0@80000000")
	if veth == nil {
		t.Fatal("veth0 node missing from d1 fragment")
	}
	if got := veth.Property("reg").Value.U32s(); len(got) != 2 || got[0] != 0x80000000 {
		t.Errorf("veth reg = %#x", got)
	}
	d3 := s.Delta("d3")
	if d3.When == nil || len(d3.After) != 0 {
		t.Errorf("d3 = %+v", d3)
	}
	if d3.Ops[0].Kind != OpModifies || d3.Ops[0].Target != "/" {
		t.Errorf("d3 op = %+v", d3.Ops[0])
	}
}

func TestActivationAndOrder(t *testing.T) {
	s := mustSet(t, listing4)

	// VM1 (Fig. 1b): veth0, memory -> d3 < d4 < ... with d1 active
	vm1 := featmodel.ConfigOf("memory", "cpu@0", "uart0", "uart1", "veth0")
	ordered, err := s.Order(vm1)
	if err != nil {
		t.Fatalf("Order: %v", err)
	}
	names := make([]string, len(ordered))
	for i, d := range ordered {
		names[i] = d.Name
	}
	// The induced strict partial order for VM1 is d3 < d4 < d2? No:
	// paper says d3 < d4 < d2 for the FIRST VM -- with its veth0/d1
	// naming convention inverted; structurally d3 must precede d1/d4.
	idx := make(map[string]int)
	for i, n := range names {
		idx[n] = i
	}
	if _, ok := idx["d2"]; ok {
		t.Errorf("d2 must not be active for VM1: %v", names)
	}
	if !(idx["d3"] < idx["d1"] && idx["d3"] < idx["d4"]) {
		t.Errorf("order %v violates d3 < d1 and d3 < d4", names)
	}

	// No veth: only d4 is active.
	plain := featmodel.ConfigOf("memory", "cpu@0", "uart0")
	act := s.Active(plain)
	if len(act) != 1 || act[0].Name != "d4" {
		t.Errorf("active = %v, want [d4]", act)
	}
}

func TestApplyVM1Product(t *testing.T) {
	s := mustSet(t, listing4)
	core := mustTree(t, coreDTS)
	vm1 := featmodel.ConfigOf("memory", "cpu@0", "uart0", "veth0")

	product, trace, err := s.Apply(core, vm1)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(trace) != 3 { // d3, d1, d4 in some valid order
		t.Errorf("trace = %v", trace)
	}

	// d3 switched the root to 32-bit addressing and added vEthernet
	if ac := product.Root.AddressCells(); ac != 1 {
		t.Errorf("#address-cells = %d, want 1", ac)
	}
	veth := product.Lookup("/vEthernet/veth0@80000000")
	if veth == nil {
		t.Fatal("veth0 missing from product")
	}
	if got, _ := veth.StringValue("compatible"); got != "veth" {
		t.Errorf("veth compatible = %q", got)
	}
	// provenance: the veth node is blamed on d1
	if veth.Origin.Delta != "d1" {
		t.Errorf("veth origin delta = %q, want d1", veth.Origin.Delta)
	}

	// d4 rewrote the memory reg to 32-bit cells
	mem := product.Lookup("/memory@40000000")
	reg := mem.Property("reg")
	if got := reg.Value.U32s(); len(got) != 4 || got[0] != 0x40000000 {
		t.Errorf("memory reg = %#x", got)
	}
	if reg.Origin.Delta != "d4" {
		t.Errorf("memory reg origin delta = %q, want d4", reg.Origin.Delta)
	}

	// the original core tree is untouched
	if got := core.Root.AddressCells(); got != 2 {
		t.Error("Apply mutated the core tree")
	}
}

func TestApplyOmittedD4Truncation(t *testing.T) {
	// Section IV-C: omit d4 -> memory reg keeps its 64-bit layout
	// while the root switched to 32-bit cells.
	src := strings.Replace(listing4, "delta d4 after d3 when memory", "delta d4 after d3 when never", 1)
	s := mustSet(t, src)
	core := mustTree(t, coreDTS)
	vm1 := featmodel.ConfigOf("memory", "veth0")
	product, _, err := s.Apply(core, vm1)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	mem := product.Lookup("/memory@40000000")
	if got := len(mem.Property("reg").Value.U32s()); got != 8 {
		t.Fatalf("reg cells = %d, want 8 (unconverted)", got)
	}
	if ac := product.Root.AddressCells(); ac != 1 {
		t.Errorf("#address-cells = %d, want 1", ac)
	}
}

func TestAddsExistingNodeFails(t *testing.T) {
	s := mustSet(t, `
delta a {
    adds binding / {
        uart@20000000 { };
    }
}
`)
	core := mustTree(t, coreDTS)
	_, _, err := s.Apply(core, featmodel.ConfigOf())
	var ae *ApplyError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want ApplyError", err)
	}
	if ae.Delta != "a" || !strings.Contains(ae.Msg, "already exists") {
		t.Errorf("ApplyError = %+v", ae)
	}
}

func TestRemoves(t *testing.T) {
	s := mustSet(t, `
delta strip when minimal {
    removes node uart@20000000;
    removes property memory@40000000 device_type;
}
`)
	core := mustTree(t, coreDTS)
	product, _, err := s.Apply(core, featmodel.ConfigOf("minimal"))
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if product.Lookup("/uart@20000000") != nil {
		t.Error("uart should be removed")
	}
	if product.Lookup("/memory@40000000").Property("device_type") != nil {
		t.Error("device_type should be removed")
	}

	// inactive -> nothing happens
	untouched, _, err := s.Apply(core, featmodel.ConfigOf())
	if err != nil {
		t.Fatal(err)
	}
	if untouched.Lookup("/uart@20000000") == nil {
		t.Error("inactive delta must not apply")
	}
}

func TestRemoveMissingFails(t *testing.T) {
	s := mustSet(t, `
delta bad {
    removes node nonexistent@0;
}
`)
	core := mustTree(t, coreDTS)
	if _, _, err := s.Apply(core, featmodel.ConfigOf()); err == nil {
		t.Error("removing a missing node should fail")
	}
}

func TestCycleDetection(t *testing.T) {
	s := mustSet(t, `
delta a after b { modifies / { x = <1>; } }
delta b after a { modifies / { y = <1>; } }
`)
	_, err := s.Order(featmodel.ConfigOf())
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CycleError", err)
	}
}

func TestAmbiguityDetection(t *testing.T) {
	// a and b both write /#x with no order between them.
	s := mustSet(t, `
delta a { modifies / { x = <1>; } }
delta b { modifies / { x = <2>; } }
`)
	_, err := s.Order(featmodel.ConfigOf())
	var ae *AmbiguityError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want AmbiguityError", err)
	}
	if ae.Location != "/#x" {
		t.Errorf("location = %q", ae.Location)
	}

	// ordering resolves the ambiguity
	s2 := mustSet(t, `
delta a { modifies / { x = <1>; } }
delta b after a { modifies / { x = <2>; } }
`)
	ordered, err := s2.Order(featmodel.ConfigOf())
	if err != nil {
		t.Fatalf("Order: %v", err)
	}
	core := mustTree(t, coreDTS)
	product, _, err := s2.Apply(core, featmodel.ConfigOf())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := product.Root.CellValue("x"); v != 2 {
		t.Errorf("x = %d, want 2 (b applied last; order %v)", v, ordered)
	}

	// disjoint writes need no order
	s3 := mustSet(t, `
delta a { modifies / { x = <1>; } }
delta b { modifies / { y = <2>; } }
`)
	if _, err := s3.Order(featmodel.ConfigOf()); err != nil {
		t.Errorf("disjoint writes should be fine: %v", err)
	}
}

func TestTransitiveOrderResolvesAmbiguity(t *testing.T) {
	s := mustSet(t, `
delta a { modifies / { x = <1>; } }
delta m after a { modifies / { unrelated = <0>; } }
delta b after m { modifies / { x = <2>; } }
`)
	if _, err := s.Order(featmodel.ConfigOf()); err != nil {
		t.Errorf("transitively ordered deltas should be fine: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"not delta", `module x { }`, "expected 'delta'"},
		{"bad when", `delta a when (x { }`, "when clause"},
		{"unknown op", `delta a { frobnicate / { } }`, "unknown operation"},
		{"adds without binding", `delta a { adds / { } }`, "binding"},
		{"after unknown", `delta a after ghost { }`, "unknown delta"},
		{"duplicate", "delta a { }\ndelta a { }", "duplicate"},
		{"bad fragment", `delta a { modifies / { $$$ } }`, "unexpected"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse("t", tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestDeclarationOrderTieBreak(t *testing.T) {
	s := mustSet(t, `
delta z { modifies / { a = <1>; } }
delta y { modifies / { b = <1>; } }
delta x { modifies / { c = <1>; } }
`)
	ordered, err := s.Order(featmodel.ConfigOf())
	if err != nil {
		t.Fatal(err)
	}
	if ordered[0].Name != "z" || ordered[1].Name != "y" || ordered[2].Name != "x" {
		t.Errorf("order = %v, want declaration order", ordered)
	}
}
