package delta_test

// The lifted merged tree is only trustworthy if projecting it onto a
// configuration reproduces exactly what enumerative application
// produces. These differential tests pin Project(Lift(core), cfg)
// against Set.Apply(core, cfg) over the paper's running example (all 12
// products), the E6 corpus (d4 omitted), and randomized conform
// corpora, and check that ActiveConflicts mirrors Apply errors.

import (
	"testing"

	"llhsc/internal/conform"
	"llhsc/internal/delta"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
)

func runningExampleParts(t *testing.T) (*delta.Set, *featmodel.Model, [][]string) {
	t.Helper()
	set, err := runningexample.Deltas()
	if err != nil {
		t.Fatal(err)
	}
	model, err := runningexample.Model()
	if err != nil {
		t.Fatal(err)
	}
	products, complete := featmodel.NewAnalyzer(model).EnumerateProducts(0)
	if !complete {
		t.Fatal("product enumeration incomplete")
	}
	return set, model, products
}

func TestLiftProjectMatchesApplyRunningExample(t *testing.T) {
	core, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	set, _, products := runningExampleParts(t)
	lifted, err := set.Lift(core)
	if err != nil {
		t.Fatal(err)
	}
	if len(products) != runningexample.ProductCount {
		t.Fatalf("enumerated %d products, want %d", len(products), runningexample.ProductCount)
	}
	for _, p := range products {
		cfg := featmodel.ConfigOf(p...)
		applied, _, err := set.Apply(core, cfg)
		if err != nil {
			t.Fatalf("product %v: apply: %v", p, err)
		}
		if conflicts := lifted.ActiveConflicts(cfg); len(conflicts) > 0 {
			t.Errorf("product %v: apply succeeded but lifted reports conflicts: %v", p, conflicts)
		}
		projected := lifted.Project(cfg)
		if err := conform.TreesStructurallyEqual(applied, projected); err != nil {
			t.Errorf("product %v: projection differs from application: %v\napplied:\n%s\nprojected:\n%s",
				p, err, applied.Print(), projected.Print())
		}
	}
}

// TestLiftProjectMatchesApplyE6 repeats the comparison on the paper's
// truncation corpus: the delta set without d4, whose products exhibit
// four memory banks and a collision at 0x0.
func TestLiftProjectMatchesApplyE6(t *testing.T) {
	core, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	set, _, products := runningExampleParts(t)
	var kept []*delta.Delta
	for _, d := range set.Deltas {
		if d.Name != "d4" {
			kept = append(kept, d)
		}
	}
	smaller, err := delta.NewSet(kept)
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := smaller.Lift(core)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range products {
		cfg := featmodel.ConfigOf(p...)
		applied, _, err := smaller.Apply(core, cfg)
		if err != nil {
			t.Fatalf("product %v: apply: %v", p, err)
		}
		if err := conform.TreesStructurallyEqual(applied, lifted.Project(cfg)); err != nil {
			t.Errorf("product %v: projection differs from application: %v", p, err)
		}
	}
}

// TestLiftProjectMatchesApplyConform runs the differential comparison
// over randomized conform corpora: every configuration of the 3-feature
// space against every generated delta set.
func TestLiftProjectMatchesApplyConform(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 60; seed++ {
		c := conform.GenerateCase(seed)
		if c.Deltas == "" {
			continue
		}
		core, err := conform.ParseOracle("gen.dts", c.Source)
		if err != nil {
			t.Fatalf("seed %d: core does not parse: %v", seed, err)
		}
		set, err := delta.Parse("gen.deltas", c.Deltas)
		if err != nil {
			t.Fatalf("seed %d: deltas do not parse: %v", seed, err)
		}
		lifted, err := set.Lift(core)
		if err != nil {
			t.Fatalf("seed %d: lift: %v", seed, err)
		}
		for mask := 0; mask < 1<<len(conform.Features); mask++ {
			cfg := make(featmodel.Configuration)
			for i, f := range conform.Features {
				if mask&(1<<i) != 0 {
					cfg[f] = true
				}
			}
			applied, _, err := set.Apply(core, cfg)
			conflicts := lifted.ActiveConflicts(cfg)
			if err != nil {
				if len(conflicts) == 0 {
					t.Errorf("seed %d cfg %v: apply failed (%v) but lifted reports no conflict",
						seed, cfg.Sorted(), err)
				}
				continue
			}
			if len(conflicts) > 0 {
				t.Errorf("seed %d cfg %v: apply succeeded but lifted reports conflicts: %v",
					seed, cfg.Sorted(), conflicts)
				continue
			}
			if err := conform.TreesStructurallyEqual(applied, lifted.Project(cfg)); err != nil {
				t.Errorf("seed %d cfg %v: projection differs from application: %v",
					seed, cfg.Sorted(), err)
			}
			cases++
		}
	}
	if cases < 100 {
		t.Fatalf("only %d clean differential cases ran; generator drift?", cases)
	}
}

func TestLiftDumpDeterministic(t *testing.T) {
	core, err := runningexample.Tree()
	if err != nil {
		t.Fatal(err)
	}
	set, _, _ := runningExampleParts(t)
	a, err := set.Lift(core)
	if err != nil {
		t.Fatal(err)
	}
	b, err := set.Lift(core)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dump() != b.Dump() {
		t.Error("Lift dump is not deterministic across runs")
	}
	if a.Dump() == "" {
		t.Error("Lift dump is empty")
	}
}
