package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fixedSnapshot is a hand-built span tree with known offsets, so the
// expected trace bytes are fully determined.
func fixedSnapshot() SpanSnapshot {
	return SpanSnapshot{
		Name:   "request",
		Millis: 10,
		Attrs:  []Attr{{Key: "mode", Value: "enumerate"}},
		Children: []SpanSnapshot{
			{Name: "vm:vm1", StartMs: 1, Millis: 4, Children: []SpanSnapshot{
				{Name: "semantic", StartMs: 2, Millis: 2},
			}},
			{Name: "platform", StartMs: 5, Millis: 4},
		},
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixedSnapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	// metadata + root + 3 spans
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("event count = %d, want 5", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "process_name" || meta.Args["name"] != "llhsc" {
		t.Errorf("first event = %+v, want process_name metadata", meta)
	}
	root := doc.TraceEvents[1]
	if root.Name != "request" || root.Ph != "X" || root.Tid != 0 || root.Dur != 10000 {
		t.Errorf("root event = %+v, want request X tid=0 dur=10000us", root)
	}
	if root.Args["mode"] != "enumerate" {
		t.Errorf("root args = %v, want mode=enumerate", root.Args)
	}
	// The vm subtree shares tid 1; platform gets tid 2. Timestamps are
	// microseconds of the StartMs offsets.
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
	}
	vm := doc.TraceEvents[byName["vm:vm1"]]
	sem := doc.TraceEvents[byName["semantic"]]
	plat := doc.TraceEvents[byName["platform"]]
	if vm.Tid != 1 || sem.Tid != 1 || plat.Tid != 2 {
		t.Errorf("tids = vm:%d semantic:%d platform:%d, want 1 1 2", vm.Tid, sem.Tid, plat.Tid)
	}
	if vm.Ts != 1000 || sem.Ts != 2000 || plat.Ts != 5000 {
		t.Errorf("ts = vm:%v semantic:%v platform:%v, want 1000 2000 5000", vm.Ts, sem.Ts, plat.Ts)
	}
}

// TestWriteChromeTraceDeterministic pins the byte-determinism contract:
// the same snapshot must serialize to the same bytes, every time.
func TestWriteChromeTraceDeterministic(t *testing.T) {
	var first bytes.Buffer
	if err := WriteChromeTrace(&first, fixedSnapshot()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := WriteChromeTrace(&again, fixedSnapshot()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("run %d produced different bytes:\n%s\nvs\n%s", i, first.String(), again.String())
		}
	}
}

// TestSnapshotStartOffsets pins that Snapshot records child start
// offsets relative to the root, which the trace exporter depends on.
func TestSnapshotStartOffsets(t *testing.T) {
	root := NewSpan("root")
	time.Sleep(2 * time.Millisecond)
	child := root.StartChild("child")
	time.Sleep(1 * time.Millisecond)
	child.End()
	root.End()
	sn := root.Snapshot()
	if sn.StartMs != 0 {
		t.Errorf("root StartMs = %v, want 0", sn.StartMs)
	}
	if len(sn.Children) != 1 {
		t.Fatalf("children = %d, want 1", len(sn.Children))
	}
	if got := sn.Children[0].StartMs; got < 1 {
		t.Errorf("child StartMs = %v, want >= 1ms after root", got)
	}
	if sn.Children[0].StartMs > sn.Millis {
		t.Errorf("child starts (%vms) after root ended (%vms)", sn.Children[0].StartMs, sn.Millis)
	}
}

func TestWriteChromeTraceOfLiveTree(t *testing.T) {
	root := NewSpan("llhsc")
	c := root.StartChild("phase")
	c.SetAttr("cache", "miss")
	c.End()
	root.End()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"phase"`) || !strings.Contains(buf.String(), `"cache": "miss"`) {
		t.Errorf("trace missing phase or attr:\n%s", buf.String())
	}
}
