// Package obs is llhsc's dependency-free observability layer: a span
// tracer for per-run phase attribution (trace.go) and a metrics
// registry with Prometheus text exposition (this file).
//
// Both halves are built for the pipeline's concurrency model. Metric
// updates are single atomic operations — workers hammering a counter
// from the parallel fan-out never contend on a lock — and the registry
// lock is taken only on registration and exposition. Tracing follows
// the nil-object pattern: every method on a nil *Span is a no-op, so
// uninstrumented runs pay one nil check per phase instead of branching
// at every call site.
//
// Metric names follow the scheme llhsc_<pkg>_<name>, where <pkg> is
// the internal package that owns the instrument (service, checkcache,
// sat, smt, constraints). Counters end in _total; histograms use
// seconds. See DESIGN.md §10.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use, so structs can embed one without a constructor.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets, plus a
// running sum and count. Observations and exposition are lock-free;
// a scrape may observe a sum and bucket counts from slightly different
// instants, which Prometheus tolerates by design (counters only grow).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// DefBuckets is the default latency bucket layout, in seconds. It
// spans 100µs to ~100s, doubling-ish — wide enough for both cache-hit
// checks and budget-bounded SMT marathons.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (nil = DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable; a binary search would not beat it here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Metric is anything the registry can expose. writeTo emits the
// sample lines (no HELP/TYPE headers) for the metric under the given
// full name and pre-rendered label section ("" or `{k="v",...}`).
type Metric interface {
	metricType() string
	writeTo(w io.Writer, name, labels string)
}

func (c *Counter) metricType() string { return "counter" }
func (c *Counter) writeTo(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
}

func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) writeTo(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, g.Value())
}

func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) writeTo(w io.Writer, name, labels string) {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(inner, formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(inner, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

func bucketLabels(inner, le string) string {
	if inner == "" {
		return `{le="` + le + `"}`
	}
	return "{" + inner + `,le="` + le + `"}`
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// FuncGauge exposes a value computed at scrape time — for quantities
// that already live under someone else's lock (cache entry counts).
type FuncGauge func() float64

func (f FuncGauge) metricType() string { return "gauge" }
func (f FuncGauge) writeTo(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(f()))
}

// vec is the shared label-to-child machinery behind CounterVec,
// GaugeVec and HistogramVec. Children are created on first use and
// cached; the read path is one RLock + map lookup.
type vec struct {
	labelNames []string
	mu         sync.RWMutex
	children   map[string]Metric
	mk         func() Metric
}

func newVec(labelNames []string, mk func() Metric) *vec {
	return &vec{labelNames: labelNames, children: make(map[string]Metric), mk: mk}
}

func (v *vec) with(labelValues ...string) Metric {
	if len(labelValues) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: expected %d label values, got %d",
			len(v.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	v.mu.RLock()
	m, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if m, ok := v.children[key]; ok {
		return m
	}
	m = v.mk()
	v.children[key] = m
	return m
}

func (v *vec) writeAll(w io.Writer, name string) {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.mu.RLock()
		m := v.children[k]
		v.mu.RUnlock()
		m.writeTo(w, name, renderLabels(v.labelNames, strings.Split(k, "\x00")))
	}
}

func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ v *vec }

// With returns the counter for the given label values, creating it on
// first use.
func (cv *CounterVec) With(labelValues ...string) *Counter {
	return cv.v.with(labelValues...).(*Counter)
}

func (cv *CounterVec) metricType() string { return "counter" }
func (cv *CounterVec) writeTo(w io.Writer, name, _ string) {
	cv.v.writeAll(w, name)
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ v *vec }

// With returns the gauge for the given label values.
func (gv *GaugeVec) With(labelValues ...string) *Gauge {
	return gv.v.with(labelValues...).(*Gauge)
}

func (gv *GaugeVec) metricType() string { return "gauge" }
func (gv *GaugeVec) writeTo(w io.Writer, name, _ string) {
	gv.v.writeAll(w, name)
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	v *vec
}

// With returns the histogram for the given label values.
func (hv *HistogramVec) With(labelValues ...string) *Histogram {
	return hv.v.with(labelValues...).(*Histogram)
}

func (hv *HistogramVec) metricType() string { return "histogram" }
func (hv *HistogramVec) writeTo(w io.Writer, name, _ string) {
	hv.v.writeAll(w, name)
}

// family is one registered metric name.
type family struct {
	name, help string
	metric     Metric
}

// Registry holds registered metrics and renders them in Prometheus
// text exposition format. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Register adds a metric under the given family name. Registering the
// same name twice panics — exactly one source of truth per family.
func (r *Registry) Register(name, help string, m Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric registration: " + name)
	}
	r.families[name] = &family{name: name, help: help, metric: m}
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.Register(name, help, c)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.Register(name, help, g)
	return g
}

// NewHistogram registers and returns a histogram (nil bounds =
// DefBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.Register(name, help, h)
	return h
}

// NewCounterVec registers and returns a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	cv := &CounterVec{v: newVec(labelNames, func() Metric { return &Counter{} })}
	r.Register(name, help, cv)
	return cv
}

// NewGaugeVec registers and returns a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	gv := &GaugeVec{v: newVec(labelNames, func() Metric { return &Gauge{} })}
	r.Register(name, help, gv)
	return gv
}

// NewHistogramVec registers and returns a labeled histogram family
// (nil bounds = DefBuckets).
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	hv := &HistogramVec{v: newVec(labelNames, func() Metric { return NewHistogram(bounds) })}
	r.Register(name, help, hv)
	return hv
}

// FamilyInfo describes one registered metric family — the metrics
// hygiene tests iterate these to check naming and help conventions.
type FamilyInfo struct {
	Name, Help, Type string
}

// Families returns every registered family sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, FamilyInfo{Name: f.name, Help: f.help, Type: f.metric.metricType()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format, sorted by family name for a stable scrape.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.metric.metricType())
		f.metric.writeTo(w, f.name, "")
	}
}

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format (the GET /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
