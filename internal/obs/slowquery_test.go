package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestSlowQueryLogThreshold(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowQueryLog(&buf, 5)
	l.Observe(QueryRecord{Family: "semantic", Tier: "word", Millis: 0.01})
	l.Observe(QueryRecord{Family: "semantic", Tier: "sat", A: "/a[0]", B: "/b[0]",
		Verdict: "overlap", Witness: "0x40000000", Millis: 12.5, Conflicts: 3})
	if l.Observed() != 2 {
		t.Errorf("Observed = %d, want 2", l.Observed())
	}
	if l.SlowCount() != 1 {
		t.Errorf("SlowCount = %d, want 1", l.SlowCount())
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("log lines = %d, want 1 (only the slow query)", len(lines))
	}
	var line map[string]any
	if err := json.Unmarshal(lines[0], &line); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	for k, want := range map[string]any{
		"level":   "warn",
		"msg":     "slow-query",
		"family":  "semantic",
		"tier":    "sat",
		"a":       "/a[0]",
		"b":       "/b[0]",
		"verdict": "overlap",
		"witness": "0x40000000",
	} {
		if line[k] != want {
			t.Errorf("line[%s] = %v, want %v", k, line[k], want)
		}
	}
	if line["millis"].(float64) != 12.5 {
		t.Errorf("millis = %v, want 12.5", line["millis"])
	}
	if line["time"] == "" || line["time"] == nil {
		t.Error("line has no timestamp")
	}
}

func TestSlowQueryLogNilSafe(t *testing.T) {
	var l *SlowQueryLog
	l.Observe(QueryRecord{Millis: 100}) // must not panic
	if l.Slow(100) {
		t.Error("nil log claims queries are slow")
	}
	if l.Observed() != 0 || l.SlowCount() != 0 || l.ThresholdMs() != 0 {
		t.Error("nil log must report zero counters")
	}
}

func TestSlowQueryLogNilWriterCountsOnly(t *testing.T) {
	l := NewSlowQueryLog(nil, 0)
	l.Observe(QueryRecord{Millis: 50})
	if l.Observed() != 1 || l.SlowCount() != 1 {
		t.Errorf("counters = (%d, %d), want (1, 1)", l.Observed(), l.SlowCount())
	}
}

// TestSlowQueryLogConcurrent pins line atomicity under -race: parallel
// observers must interleave whole lines, never bytes.
func TestSlowQueryLogConcurrent(t *testing.T) {
	var buf syncBuffer
	l := NewSlowQueryLog(&buf, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Observe(QueryRecord{Family: "semantic", Tier: "sat", Verdict: "disjoint", Millis: 1})
			}
		}()
	}
	wg.Wait()
	if l.Observed() != 400 {
		t.Fatalf("Observed = %d, want 400", l.Observed())
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 400 {
		t.Fatalf("log lines = %d, want 400", len(lines))
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal(ln, &m); err != nil {
			t.Fatalf("line %d is torn: %v: %s", i, err, ln)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for concurrent log tests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.b.Bytes()...)
}
