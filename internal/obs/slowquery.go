package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// QueryRecord is one solver-level decision as the slow-query log sees
// it: a semantic pair decision (word or SAT tier) or a lifted
// reachability query. Producers fill what they know; zero fields are
// omitted from the log line.
type QueryRecord struct {
	Family       string  `json:"family"`            // "semantic" | "lifted"
	Tier         string  `json:"tier"`              // "word" | "sat" | "lifted"
	A            string  `json:"a,omitempty"`       // first region path (pair queries)
	B            string  `json:"b,omitempty"`       // second region path (pair queries)
	Query        string  `json:"query,omitempty"`   // guard expression (lifted queries)
	Verdict      string  `json:"verdict"`           // "overlap"|"disjoint"|"sat"|"unsat"|"limit"
	Witness      string  `json:"witness,omitempty"` // colliding address / sample config
	Millis       float64 `json:"millis"`
	SolverCalls  int     `json:"solverCalls,omitempty"`
	Conflicts    uint64  `json:"conflicts,omitempty"`
	Decisions    uint64  `json:"decisions,omitempty"`
	Propagations uint64  `json:"propagations,omitempty"`
	Bundle       string  `json:"bundle,omitempty"` // reproducer bundle path, if written
}

// SlowQueryLog receives every QueryRecord the instrumented checkers
// produce and emits a structured log line for those at or over the
// threshold. A nil *SlowQueryLog is a valid disabled log: Observe and
// Slow are no-ops, and — more importantly — the checkers' OnQuery
// hooks are left nil entirely when the log is disabled, so the hot
// decision loops never construct a QueryRecord at all.
type SlowQueryLog struct {
	thresholdMs float64
	mu          sync.Mutex
	w           io.Writer
	slow        Counter
	observed    Counter
}

// NewSlowQueryLog returns a log that writes one JSON line per query at
// or over thresholdMs to w (nil w = count but do not write).
func NewSlowQueryLog(w io.Writer, thresholdMs float64) *SlowQueryLog {
	return &SlowQueryLog{w: w, thresholdMs: thresholdMs}
}

// ThresholdMs returns the configured threshold (0 for a nil log).
func (l *SlowQueryLog) ThresholdMs() float64 {
	if l == nil {
		return 0
	}
	return l.thresholdMs
}

// Slow reports whether a query of the given duration crosses the
// threshold. False on a nil log.
func (l *SlowQueryLog) Slow(millis float64) bool {
	return l != nil && millis >= l.thresholdMs
}

// Observed returns how many queries have been observed in total.
func (l *SlowQueryLog) Observed() uint64 {
	if l == nil {
		return 0
	}
	return l.observed.Value()
}

// SlowCount returns how many observed queries crossed the threshold.
func (l *SlowQueryLog) SlowCount() uint64 {
	if l == nil {
		return 0
	}
	return l.slow.Value()
}

// Observe records one query, writing a structured line when it is
// slow. Safe on a nil log and for concurrent use.
func (l *SlowQueryLog) Observe(q QueryRecord) {
	if l == nil {
		return
	}
	l.observed.Inc()
	if q.Millis < l.thresholdMs {
		return
	}
	l.slow.Inc()
	if l.w == nil {
		return
	}
	line := struct {
		Time  string `json:"time"`
		Level string `json:"level"`
		Msg   string `json:"msg"`
		QueryRecord
	}{
		Time:        time.Now().UTC().Format(time.RFC3339Nano),
		Level:       "warn",
		Msg:         "slow-query",
		QueryRecord: q,
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}
