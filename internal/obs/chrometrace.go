package obs

import (
	"encoding/json"
	"io"
)

// traceEvent is one Chrome trace-event ("X" = complete event, "M" =
// metadata). Timestamps and durations are microseconds, per the trace
// event format spec.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTraceDoc is the JSON-object form of the trace event format,
// loadable by chrome://tracing and Perfetto.
type chromeTraceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes a span snapshot as Chrome trace-event
// JSON. The output is a pure function of the snapshot: events are
// emitted in depth-first pre-order, args maps marshal with sorted
// keys, and no clocks are consulted — identical snapshots produce
// identical bytes, which the determinism tests pin.
//
// Track layout: everything runs in pid 1. The root span and each of
// its direct children's subtrees get their own tid (root = 0, i-th
// direct child's subtree = i+1), so parallel per-product work renders
// as parallel tracks instead of overlapping on one.
func WriteChromeTrace(w io.Writer, root SpanSnapshot) error {
	events := []traceEvent{{
		Name: "process_name",
		Ph:   "M",
		Pid:  1,
		Args: map[string]string{"name": "llhsc"},
	}}
	var walk func(sn SpanSnapshot, tid int)
	walk = func(sn SpanSnapshot, tid int) {
		dur := sn.Millis * 1000
		ev := traceEvent{
			Name: sn.Name,
			Ph:   "X",
			Ts:   sn.StartMs * 1000,
			Dur:  &dur,
			Pid:  1,
			Tid:  tid,
		}
		if len(sn.Attrs) > 0 {
			ev.Args = make(map[string]string, len(sn.Attrs))
			for _, a := range sn.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
		for _, c := range sn.Children {
			walk(c, tid)
		}
	}
	rootEv := traceEvent{Name: root.Name, Ph: "X", Ts: root.StartMs * 1000, Pid: 1, Tid: 0}
	rootDur := root.Millis * 1000
	rootEv.Dur = &rootDur
	if len(root.Attrs) > 0 {
		rootEv.Args = make(map[string]string, len(root.Attrs))
		for _, a := range root.Attrs {
			rootEv.Args[a.Key] = a.Value
		}
	}
	events = append(events, rootEv)
	for i, c := range root.Children {
		walk(c, i+1)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTraceDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}
