package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	h.writeTo(&b, "m", "")
	out := b.String()
	for _, line := range []string{
		`m_bucket{le="0.1"} 1`,
		`m_bucket{le="1"} 3`,
		`m_bucket{le="10"} 4`,
		`m_bucket{le="+Inf"} 5`,
		`m_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("llhsc_test_ops_total", "operations")
	c.Add(3)
	cv := reg.NewCounterVec("llhsc_test_family_total", "per family", "family")
	cv.With("semantic").Add(7)
	cv.With("syntactic").Inc()
	reg.NewGauge("llhsc_test_inflight", "in flight").Set(2)
	reg.Register("llhsc_test_entries", "entries", FuncGauge(func() float64 { return 5 }))
	h := reg.NewHistogramVec("llhsc_test_seconds", "latency", []float64{1}, "endpoint", "code")
	h.With("/check", "2xx").Observe(0.5)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP llhsc_test_ops_total operations",
		"# TYPE llhsc_test_ops_total counter",
		"llhsc_test_ops_total 3",
		`llhsc_test_family_total{family="semantic"} 7`,
		`llhsc_test_family_total{family="syntactic"} 1`,
		"# TYPE llhsc_test_inflight gauge",
		"llhsc_test_inflight 2",
		"llhsc_test_entries 5",
		`llhsc_test_seconds_bucket{endpoint="/check",code="2xx",le="1"} 1`,
		`llhsc_test_seconds_count{endpoint="/check",code="2xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families come out sorted by name for stable scrapes.
	if strings.Index(out, "llhsc_test_entries") > strings.Index(out, "llhsc_test_ops_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("llhsc_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg.NewCounter("llhsc_dup_total", "x")
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	cv := reg.NewCounterVec("llhsc_esc_total", "escaping", "path")
	cv.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `{path="a\"b\\c\nd"}`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

func TestNilSpanIsNoop(t *testing.T) {
	var s *Span
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("StartChild on nil span must return nil")
	}
	c.End()
	c.SetAttr("k", "v")
	c.SetInt("n", 1)
	if c.Duration() != 0 {
		t.Fatal("nil span has duration")
	}
	if got := c.PhaseSet(); len(got) != 0 {
		t.Fatalf("nil span phase set = %v", got)
	}
}

func TestSpanTree(t *testing.T) {
	root := NewSpan("check")
	a := root.StartChild("allocation")
	a.SetInt("conflicts", 3)
	a.End()
	vm := root.StartChild("vm:vm1")
	vm.StartChild("semantic").End()
	vm.End()
	root.End()

	snap := root.Snapshot()
	if snap.Name != "check" || len(snap.Children) != 2 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	if snap.Children[0].Name != "allocation" || snap.Children[1].Name != "vm:vm1" {
		t.Fatalf("children out of order: %+v", snap.Children)
	}
	if len(snap.Children[0].Attrs) != 1 || snap.Children[0].Attrs[0].Value != "3" {
		t.Fatalf("attr lost: %+v", snap.Children[0].Attrs)
	}
	phases := root.PhaseSet()
	want := []string{"allocation", "check", "semantic", "vm:vm1"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
	var b strings.Builder
	root.WriteTree(&b)
	if !strings.Contains(b.String(), "conflicts=3") {
		t.Errorf("tree rendering missing attr:\n%s", b.String())
	}
}

func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context carries a span")
	}
	root := NewSpan("r")
	ctx = ContextWithSpan(ctx, root)
	if SpanFromContext(ctx) != root {
		t.Fatal("span not recovered from context")
	}
	if got := ContextWithSpan(context.Background(), nil); SpanFromContext(got) != nil {
		t.Fatal("nil span stored in context")
	}
}

func TestSnapshotOfRunningSpan(t *testing.T) {
	s := NewSpan("live")
	time.Sleep(time.Millisecond)
	snap := s.Snapshot()
	if snap.Millis <= 0 {
		t.Fatalf("running span reports %vms", snap.Millis)
	}
	s.End()
	d := s.Duration()
	time.Sleep(time.Millisecond)
	if s.Duration() != d {
		t.Fatal("duration changed after End")
	}
}

// TestConcurrentMetricsAndSpans hammers counters, histogram and a span
// tree from many goroutines while a scraper renders the registry —
// run with -race.
func TestConcurrentMetricsAndSpans(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("llhsc_conc_total", "c")
	hv := reg.NewHistogramVec("llhsc_conc_seconds", "h", nil, "family")
	root := NewSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				hv.With("semantic").Observe(0.001)
				sp := root.StartChild("work")
				sp.SetInt("j", uint64(j))
				sp.End()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var b strings.Builder
				reg.WritePrometheus(&b)
				_ = root.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if hv.With("semantic").Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", hv.With("semantic").Count())
	}
}
