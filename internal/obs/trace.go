package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed phase of a run, with key/value attributes and
// child spans forming a tree. Spans use the monotonic clock embedded
// in time.Time, so durations are immune to wall-clock steps.
//
// Every method is safe on a nil *Span and does nothing — the disabled
// path costs one nil check, which is what keeps uninstrumented runs at
// full speed (BenchmarkObsOverhead). Spans are safe for concurrent
// use: parallel workers may attach children to the same parent, and a
// scraper may snapshot a tree that is still running.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// NewSpan starts a new root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts a child span under s. On a nil span it returns
// nil, so instrumentation chains through uninstrumented runs for free.
// Children keep their creation order; parallel fan-outs that need a
// deterministic tree pre-create one child per task in index order
// before dispatching (core.Pipeline does).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Begin re-marks the span's start as now. Spans pre-created in index
// order for a deterministic tree (see StartChild) otherwise measure
// queue wait as work; the worker calls Begin when it actually starts.
func (s *Span) Begin() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.start = time.Now()
	}
	s.mu.Unlock()
}

// End records the span's duration. Repeated End calls keep the first.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// SetAttr attaches (or appends) a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v uint64) {
	if s == nil {
		return
	}
	s.SetAttr(key, fmt.Sprintf("%d", v))
}

// Duration returns the recorded duration, or the running duration for
// a span that has not ended.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanSnapshot is an immutable copy of a span tree, JSON-ready for the
// /check response's "stats" block. StartMs is the span's start offset
// relative to the snapshotted root (0 for the root itself) — the trace
// exporter turns it into Chrome trace-event timestamps.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	StartMs  float64        `json:"startMs"`
	Millis   float64        `json:"ms"`
	Attrs    []Attr         `json:"attrs,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the span tree. Safe while the tree is still being
// built; unended spans report their running duration.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	base := s.start
	s.mu.Unlock()
	return s.snapshotRel(base)
}

// snapshotRel copies the subtree with start offsets relative to base.
func (s *Span) snapshotRel(base time.Time) SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:    s.name,
		StartMs: float64(s.start.Sub(base)) / float64(time.Millisecond),
		Millis:  float64(s.dur) / float64(time.Millisecond),
	}
	if !s.ended {
		snap.Millis = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	snap.Attrs = append([]Attr(nil), s.attrs...)
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		snap.Children = append(snap.Children, c.snapshotRel(base))
	}
	return snap
}

// PhaseSet returns the sorted, de-duplicated names of every span in
// the tree — the determinism tests compare serial vs parallel runs on
// exactly this set.
func (s *Span) PhaseSet() []string {
	seen := make(map[string]bool)
	var walk func(sn SpanSnapshot)
	walk = func(sn SpanSnapshot) {
		seen[sn.Name] = true
		for _, c := range sn.Children {
			walk(c)
		}
	}
	if s != nil {
		walk(s.Snapshot())
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteTree renders the span tree with durations and attributes, one
// span per line, indented by depth (the llhsc check -trace output).
func (s *Span) WriteTree(w io.Writer) {
	if s == nil {
		return
	}
	writeSnapshot(w, s.Snapshot(), 0)
}

func writeSnapshot(w io.Writer, sn SpanSnapshot, depth int) {
	fmt.Fprintf(w, "%*s%-24s %9.3fms", depth*2, "", sn.Name, sn.Millis)
	for _, a := range sn.Attrs {
		fmt.Fprintf(w, "  %s=%s", a.Key, a.Value)
	}
	fmt.Fprintln(w)
	for _, c := range sn.Children {
		writeSnapshot(w, c, depth+1)
	}
}

// spanKey is the context key carrying the current span.
type spanKey struct{}

// ContextWithSpan returns a context carrying the span as the current
// instrumentation point.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the current span, or nil when the run is
// uninstrumented. Callers hold the returned *Span and use its nil-safe
// methods directly rather than consulting the context again.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
