package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestFlightRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Record(FlightRecord{RequestID: fmt.Sprintf("req-%d", i)})
	}
	if got := fr.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	snap := fr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot length = %d, want capacity 4", len(snap))
	}
	// Oldest-first: the ring must hold exactly the last four records in
	// arrival order.
	for i, rec := range snap {
		wantSeq := uint64(6 + i)
		if rec.Seq != wantSeq {
			t.Errorf("snap[%d].Seq = %d, want %d", i, rec.Seq, wantSeq)
		}
		if want := fmt.Sprintf("req-%d", 6+i); rec.RequestID != want {
			t.Errorf("snap[%d].RequestID = %q, want %q", i, rec.RequestID, want)
		}
		if rec.Time == "" {
			t.Errorf("snap[%d].Time not filled in", i)
		}
	}
}

func TestFlightRecorderBelowCapacity(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(FlightRecord{RequestID: "a"})
	fr.Record(FlightRecord{RequestID: "b"})
	snap := fr.Snapshot()
	if len(snap) != 2 || snap[0].RequestID != "a" || snap[1].RequestID != "b" {
		t.Fatalf("Snapshot = %+v, want [a b]", snap)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	if seq := fr.Record(FlightRecord{}); seq != 0 {
		t.Errorf("nil Record = %d, want 0", seq)
	}
	if fr.Snapshot() != nil || fr.Total() != 0 || fr.Capacity() != 0 {
		t.Error("nil recorder must report empty state")
	}
	if path, err := fr.Dump("x", "anywhere"); path != "" || err != nil {
		t.Errorf("nil Dump = (%q, %v), want no-op", path, err)
	}
	fr.SetDumpPath("anywhere") // must not panic
}

// TestFlightRecorderConcurrent hammers the ring from many goroutines;
// run under -race this pins the locking discipline, and the final
// state must account for every write.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(16)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				fr.Record(FlightRecord{RequestID: fmt.Sprintf("w%d-%d", w, i)})
				if i%10 == 0 {
					fr.Snapshot() // concurrent readers
				}
			}
		}(w)
	}
	wg.Wait()
	if got := fr.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	snap := fr.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("Snapshot length = %d, want 16", len(snap))
	}
	// Sequence numbers must be the final 16, strictly increasing.
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("snapshot not in sequence order: %d then %d", snap[i-1].Seq, snap[i].Seq)
		}
	}
	if snap[len(snap)-1].Seq != writers*perWriter-1 {
		t.Errorf("last Seq = %d, want %d", snap[len(snap)-1].Seq, writers*perWriter-1)
	}
}

func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.json")
	fr := NewFlightRecorder(4)
	fr.SetDumpPath(path)
	fr.Record(FlightRecord{RequestID: "r1", Outcome: "ok"})
	got, err := fr.Dump("panic", "")
	if err != nil {
		t.Fatal(err)
	}
	if got != path {
		t.Fatalf("Dump path = %q, want %q", got, path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason   string         `json:"reason"`
		Capacity int            `json:"capacity"`
		Recorded uint64         `json:"recorded"`
		Records  []FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if doc.Reason != "panic" || doc.Capacity != 4 || doc.Recorded != 1 || len(doc.Records) != 1 {
		t.Errorf("dump doc = %+v, want reason=panic capacity=4 recorded=1 1 record", doc)
	}
	if doc.Records[0].RequestID != "r1" {
		t.Errorf("dumped record = %+v, want RequestID r1", doc.Records[0])
	}
}

func TestFlightRecorderDumpNoPathConfigured(t *testing.T) {
	fr := NewFlightRecorder(2)
	if path, err := fr.Dump("reason", ""); path != "" || err != nil {
		t.Fatalf("Dump without a path = (%q, %v), want no-op", path, err)
	}
}

func TestFlightHandlerServesRing(t *testing.T) {
	fr := NewFlightRecorder(4)
	fr.Record(FlightRecord{RequestID: "abc", Outcome: "ok"})
	req := httptest.NewRequest(http.MethodGet, "/debug/flight", nil)
	rec := httptest.NewRecorder()
	fr.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	var doc struct {
		Records []FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("handler body is not valid JSON: %v", err)
	}
	if len(doc.Records) != 1 || doc.Records[0].RequestID != "abc" {
		t.Errorf("records = %+v, want one record abc", doc.Records)
	}

	post := httptest.NewRequest(http.MethodPost, "/debug/flight", nil)
	rec = httptest.NewRecorder()
	fr.Handler().ServeHTTP(rec, post)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

func TestLoopbackOnly(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	for _, tc := range []struct {
		remote string
		want   int
	}{
		{"127.0.0.1:5555", http.StatusOK},
		{"[::1]:5555", http.StatusOK},
		{"10.0.0.7:5555", http.StatusForbidden},
		{"garbage", http.StatusForbidden},
	} {
		req := httptest.NewRequest(http.MethodGet, "/debug/flight", nil)
		req.RemoteAddr = tc.remote
		rec := httptest.NewRecorder()
		LoopbackOnly(ok).ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("remote %q: status = %d, want %d", tc.remote, rec.Code, tc.want)
		}
	}
}
