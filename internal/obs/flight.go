package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"
)

// DefaultFlightCapacity is the ring size used when NewFlightRecorder is
// given a non-positive capacity.
const DefaultFlightCapacity = 64

// FlightRecord is one completed request as the flight recorder keeps
// it: enough to reconstruct what the service was doing in the moments
// before a crash without holding the request body or the report.
type FlightRecord struct {
	Seq        uint64             `json:"seq"`
	Time       string             `json:"time"`
	RequestID  string             `json:"requestId,omitempty"`
	Method     string             `json:"method,omitempty"`
	Path       string             `json:"path,omitempty"`
	Status     int                `json:"status,omitempty"`
	Mode       string             `json:"mode,omitempty"`
	Strategy   string             `json:"strategy,omitempty"`
	CacheTier  string             `json:"cacheTier,omitempty"`
	Outcome    string             `json:"outcome"`
	DurationMs float64            `json:"durationMs"`
	PhaseMs    map[string]float64 `json:"phaseMs,omitempty"`
	Span       *SpanSnapshot      `json:"span,omitempty"`
	Stats      any                `json:"stats,omitempty"`
}

// FlightRecorder is a fixed-capacity concurrent ring buffer of
// FlightRecords. Writers never block readers for long: Record copies
// one struct under a mutex, Snapshot copies the ring out under the
// same mutex, and serialization happens outside it. Every method is
// safe on a nil *FlightRecorder and does nothing, so the disabled path
// costs one nil check (the same contract as *Span).
type FlightRecorder struct {
	mu       sync.Mutex
	ring     []FlightRecord
	capacity int
	total    uint64 // records ever written; next Seq
	dumpPath string
}

// NewFlightRecorder returns a recorder keeping the last capacity
// records (capacity <= 0 uses DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{ring: make([]FlightRecord, 0, capacity), capacity: capacity}
}

// SetDumpPath sets the file Dump writes to when called with "" as an
// explicit path.
func (fr *FlightRecorder) SetDumpPath(path string) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	fr.dumpPath = path
	fr.mu.Unlock()
}

// Record appends one record, evicting the oldest once the ring is
// full, and returns the assigned sequence number. The record's Seq and
// (when empty) Time are filled in.
func (fr *FlightRecorder) Record(rec FlightRecord) uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	rec.Seq = fr.total
	fr.total++
	if rec.Time == "" {
		rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	if len(fr.ring) < fr.capacity {
		fr.ring = append(fr.ring, rec)
		return rec.Seq
	}
	// Ring is full: the slot holding the oldest record is total mod
	// capacity (records land in arrival order, so the ring is a simple
	// rotation of chronological order).
	fr.ring[rec.Seq%uint64(fr.capacity)] = rec
	return rec.Seq
}

// Snapshot returns the retained records oldest-first.
func (fr *FlightRecorder) Snapshot() []FlightRecord {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]FlightRecord, 0, len(fr.ring))
	if len(fr.ring) < fr.capacity {
		return append(out, fr.ring...)
	}
	start := int(fr.total % uint64(fr.capacity))
	out = append(out, fr.ring[start:]...)
	return append(out, fr.ring[:start]...)
}

// Total returns the number of records ever written (not just retained).
func (fr *FlightRecorder) Total() uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// Capacity returns the ring capacity (0 for a nil recorder).
func (fr *FlightRecorder) Capacity() int {
	if fr == nil {
		return 0
	}
	return fr.capacity
}

// flightDump is the JSON document WriteJSON and Dump emit.
type flightDump struct {
	Reason   string         `json:"reason,omitempty"`
	Time     string         `json:"time"`
	Capacity int            `json:"capacity"`
	Recorded uint64         `json:"recorded"`
	Records  []FlightRecord `json:"records"`
}

// WriteJSON writes the retained records (oldest-first) as one indented
// JSON document: {"time","capacity","recorded","records":[...]}.
func (fr *FlightRecorder) WriteJSON(w io.Writer, reason string) error {
	d := flightDump{
		Reason:   reason,
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		Capacity: fr.Capacity(),
		Recorded: fr.Total(),
		Records:  fr.Snapshot(),
	}
	if d.Records == nil {
		d.Records = []FlightRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Dump writes the ring to path (or, when path is "", the configured
// dump path) and returns the file written. It is called from panic
// recovery and signal handlers, so it favors simplicity over
// atomicity: create/truncate, write, close. A nil recorder or an
// unset path is a no-op returning "".
func (fr *FlightRecorder) Dump(reason, path string) (string, error) {
	if fr == nil {
		return "", nil
	}
	if path == "" {
		fr.mu.Lock()
		path = fr.dumpPath
		fr.mu.Unlock()
	}
	if path == "" {
		return "", nil
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	werr := fr.WriteJSON(f, reason)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	return path, nil
}

// Handler serves the ring as JSON (the GET /debug/flight endpoint).
// Callers that expose it on a shared mux should wrap it with
// LoopbackOnly.
func (fr *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fr.WriteJSON(w, "")
	})
}

// LoopbackOnly wraps h, rejecting requests whose peer address is not a
// loopback interface with 403. Debug endpoints (/debug/flight) use it
// so that binding the service to a routable address does not expose
// request history.
func LoopbackOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		ip := net.ParseIP(host)
		if ip == nil || !ip.IsLoopback() {
			http.Error(w, "forbidden: loopback only", http.StatusForbidden)
			return
		}
		h.ServeHTTP(w, r)
	})
}
