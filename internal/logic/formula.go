// Package logic provides propositional formulas, simplification, and
// conversion to conjunctive normal form (CNF) via the Tseitin transform.
//
// Formulas are the common currency between the feature-model engine
// (internal/featmodel), the delta activation conditions (internal/delta)
// and the SMT layer (internal/smt): all of them compile their Boolean
// structure down to logic.Formula values and ultimately to CNF consumed
// by the CDCL solver in internal/sat.
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a propositional variable. Variables are 1-based;
// 0 is never a valid variable.
type Var int

// Lit is a literal: a positive value v denotes the variable v,
// a negative value -v denotes its negation. 0 is never a valid literal.
type Lit int

// Neg returns the negation of the literal.
func (l Lit) Neg() Lit { return -l }

// Var returns the variable underlying the literal.
func (l Lit) Var() Var {
	if l < 0 {
		return Var(-l)
	}
	return Var(l)
}

// Positive reports whether the literal is a positive occurrence.
func (l Lit) Positive() bool { return l > 0 }

// Kind discriminates formula nodes.
type Kind int

// Formula node kinds.
const (
	KindTrue Kind = iota + 1
	KindFalse
	KindVar
	KindNot
	KindAnd
	KindOr
)

func (k Kind) String() string {
	switch k {
	case KindTrue:
		return "true"
	case KindFalse:
		return "false"
	case KindVar:
		return "var"
	case KindNot:
		return "not"
	case KindAnd:
		return "and"
	case KindOr:
		return "or"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Formula is an immutable propositional formula. Construct formulas with
// the package-level constructors (True, False, V, Not, And, Or, Implies,
// Iff, Xor); they perform light simplification (constant folding and
// flattening of nested conjunctions/disjunctions).
type Formula struct {
	kind Kind
	v    Var
	args []*Formula
}

var (
	trueFormula  = &Formula{kind: KindTrue}
	falseFormula = &Formula{kind: KindFalse}
)

// True returns the constant true formula.
func True() *Formula { return trueFormula }

// False returns the constant false formula.
func False() *Formula { return falseFormula }

// V returns a formula consisting of the single variable v.
// It panics if v is not positive, because variable identifiers are
// 1-based by construction and a zero value indicates a programming error.
func V(v Var) *Formula {
	if v <= 0 {
		panic(fmt.Sprintf("logic: invalid variable %d", v))
	}
	return &Formula{kind: KindVar, v: v}
}

// Lit returns the formula for a literal (a variable or its negation).
func (l Lit) Formula() *Formula {
	if l > 0 {
		return V(Var(l))
	}
	return Not(V(Var(-l)))
}

// Kind returns the node kind.
func (f *Formula) Kind() Kind { return f.kind }

// Variable returns the variable of a KindVar node; it panics otherwise.
func (f *Formula) Variable() Var {
	if f.kind != KindVar {
		panic("logic: Variable called on non-variable formula")
	}
	return f.v
}

// Args returns the children of the node. The returned slice must not be
// modified.
func (f *Formula) Args() []*Formula { return f.args }

// Not returns the negation of f, folding double negations and constants.
func Not(f *Formula) *Formula {
	switch f.kind {
	case KindTrue:
		return falseFormula
	case KindFalse:
		return trueFormula
	case KindNot:
		return f.args[0]
	default:
		return &Formula{kind: KindNot, args: []*Formula{f}}
	}
}

// And returns the conjunction of fs, flattening nested conjunctions and
// folding constants. And() with no arguments is True.
func And(fs ...*Formula) *Formula {
	args := make([]*Formula, 0, len(fs))
	for _, f := range fs {
		switch f.kind {
		case KindTrue:
			// identity element
		case KindFalse:
			return falseFormula
		case KindAnd:
			args = append(args, f.args...)
		default:
			args = append(args, f)
		}
	}
	switch len(args) {
	case 0:
		return trueFormula
	case 1:
		return args[0]
	}
	return &Formula{kind: KindAnd, args: args}
}

// Or returns the disjunction of fs, flattening nested disjunctions and
// folding constants. Or() with no arguments is False.
func Or(fs ...*Formula) *Formula {
	args := make([]*Formula, 0, len(fs))
	for _, f := range fs {
		switch f.kind {
		case KindFalse:
			// identity element
		case KindTrue:
			return trueFormula
		case KindOr:
			args = append(args, f.args...)
		default:
			args = append(args, f)
		}
	}
	switch len(args) {
	case 0:
		return falseFormula
	case 1:
		return args[0]
	}
	return &Formula{kind: KindOr, args: args}
}

// Implies returns a → b.
func Implies(a, b *Formula) *Formula { return Or(Not(a), b) }

// Iff returns a ↔ b.
func Iff(a, b *Formula) *Formula {
	return And(Implies(a, b), Implies(b, a))
}

// Xor returns the exclusive or of a and b.
func Xor(a, b *Formula) *Formula {
	return Or(And(a, Not(b)), And(Not(a), b))
}

// ExactlyOne returns a formula that is true iff exactly one of fs is true.
// ExactlyOne of an empty slice is False.
func ExactlyOne(fs ...*Formula) *Formula {
	if len(fs) == 0 {
		return falseFormula
	}
	return And(Or(fs...), AtMostOne(fs...))
}

// AtMostOne returns the pairwise encoding of the at-most-one constraint
// over fs. AtMostOne of zero or one formulas is True.
func AtMostOne(fs ...*Formula) *Formula {
	if len(fs) <= 1 {
		return trueFormula
	}
	pairs := make([]*Formula, 0, len(fs)*(len(fs)-1)/2)
	for i := 0; i < len(fs); i++ {
		for j := i + 1; j < len(fs); j++ {
			pairs = append(pairs, Or(Not(fs[i]), Not(fs[j])))
		}
	}
	return And(pairs...)
}

// Vars returns the sorted set of variables occurring in f.
func (f *Formula) Vars() []Var {
	seen := make(map[Var]bool)
	var walk func(g *Formula)
	walk = func(g *Formula) {
		if g.kind == KindVar {
			seen[g.v] = true
			return
		}
		for _, a := range g.args {
			walk(a)
		}
	}
	walk(f)
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Eval evaluates f under the given assignment. Variables missing from
// the assignment evaluate to false.
func (f *Formula) Eval(assign map[Var]bool) bool {
	switch f.kind {
	case KindTrue:
		return true
	case KindFalse:
		return false
	case KindVar:
		return assign[f.v]
	case KindNot:
		return !f.args[0].Eval(assign)
	case KindAnd:
		for _, a := range f.args {
			if !a.Eval(assign) {
				return false
			}
		}
		return true
	case KindOr:
		for _, a := range f.args {
			if a.Eval(assign) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("logic: unknown kind %v", f.kind))
	}
}

// String renders the formula with variables printed as x<N>.
func (f *Formula) String() string {
	return f.StringWithNames(nil)
}

// StringWithNames renders the formula, looking variable names up in
// names; variables absent from names print as x<N>.
func (f *Formula) StringWithNames(names map[Var]string) string {
	var b strings.Builder
	f.write(&b, names)
	return b.String()
}

func (f *Formula) write(b *strings.Builder, names map[Var]string) {
	switch f.kind {
	case KindTrue:
		b.WriteString("true")
	case KindFalse:
		b.WriteString("false")
	case KindVar:
		if name, ok := names[f.v]; ok {
			b.WriteString(name)
		} else {
			fmt.Fprintf(b, "x%d", f.v)
		}
	case KindNot:
		b.WriteString("!")
		f.args[0].writeAtom(b, names)
	case KindAnd:
		f.writeNary(b, names, " & ")
	case KindOr:
		f.writeNary(b, names, " | ")
	}
}

func (f *Formula) writeAtom(b *strings.Builder, names map[Var]string) {
	if f.kind == KindAnd || f.kind == KindOr {
		b.WriteString("(")
		f.write(b, names)
		b.WriteString(")")
		return
	}
	f.write(b, names)
}

func (f *Formula) writeNary(b *strings.Builder, names map[Var]string, sep string) {
	for i, a := range f.args {
		if i > 0 {
			b.WriteString(sep)
		}
		a.writeAtom(b, names)
	}
}
