package logic

import (
	"testing"
	"testing/quick"
)

func TestConstructorsFoldConstants(t *testing.T) {
	a, b := V(1), V(2)
	tests := []struct {
		name string
		got  *Formula
		want *Formula
	}{
		{"not true", Not(True()), False()},
		{"not false", Not(False()), True()},
		{"double negation", Not(Not(a)), a},
		{"and identity", And(True(), a), a},
		{"and absorbing", And(a, False(), b), False()},
		{"or identity", Or(False(), b), b},
		{"or absorbing", Or(a, True()), True()},
		{"empty and", And(), True()},
		{"empty or", Or(), False()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestFlattening(t *testing.T) {
	f := And(And(V(1), V(2)), And(V(3), V(4)))
	if f.Kind() != KindAnd || len(f.Args()) != 4 {
		t.Fatalf("nested And not flattened: %v", f)
	}
	g := Or(Or(V(1), V(2)), V(3))
	if g.Kind() != KindOr || len(g.Args()) != 3 {
		t.Fatalf("nested Or not flattened: %v", g)
	}
}

func TestEvalConnectives(t *testing.T) {
	a, b := V(1), V(2)
	env := func(va, vb bool) map[Var]bool { return map[Var]bool{1: va, 2: vb} }
	tests := []struct {
		name string
		f    *Formula
		a, b bool
		want bool
	}{
		{"implies tt", Implies(a, b), true, true, true},
		{"implies tf", Implies(a, b), true, false, false},
		{"implies ft", Implies(a, b), false, true, true},
		{"implies ff", Implies(a, b), false, false, true},
		{"iff tt", Iff(a, b), true, true, true},
		{"iff tf", Iff(a, b), true, false, false},
		{"iff ff", Iff(a, b), false, false, true},
		{"xor tt", Xor(a, b), true, true, false},
		{"xor tf", Xor(a, b), true, false, true},
		{"xor ff", Xor(a, b), false, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Eval(env(tt.a, tt.b)); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestExactlyOne(t *testing.T) {
	fs := []*Formula{V(1), V(2), V(3)}
	f := ExactlyOne(fs...)
	for mask := 0; mask < 8; mask++ {
		env := map[Var]bool{1: mask&1 != 0, 2: mask&2 != 0, 3: mask&4 != 0}
		count := 0
		for _, set := range env {
			if set {
				count++
			}
		}
		want := count == 1
		if got := f.Eval(env); got != want {
			t.Errorf("mask %03b: got %v, want %v", mask, got, want)
		}
	}
	if got := ExactlyOne(); got != False() {
		t.Errorf("ExactlyOne() = %v, want false", got)
	}
}

func TestAtMostOne(t *testing.T) {
	fs := []*Formula{V(1), V(2), V(3), V(4)}
	f := AtMostOne(fs...)
	for mask := 0; mask < 16; mask++ {
		env := make(map[Var]bool)
		count := 0
		for i := 0; i < 4; i++ {
			if mask&(1<<i) != 0 {
				env[Var(i+1)] = true
				count++
			}
		}
		want := count <= 1
		if got := f.Eval(env); got != want {
			t.Errorf("mask %04b: got %v, want %v", mask, got, want)
		}
	}
}

func TestVars(t *testing.T) {
	f := And(V(3), Or(V(1), Not(V(3))), Implies(V(2), V(5)))
	got := f.Vars()
	want := []Var{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Vars() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars() = %v, want %v", got, want)
		}
	}
}

func TestLit(t *testing.T) {
	l := Lit(5)
	if l.Var() != 5 || !l.Positive() || l.Neg() != Lit(-5) {
		t.Errorf("positive literal behaviour wrong: %v", l)
	}
	n := Lit(-7)
	if n.Var() != 7 || n.Positive() || n.Neg() != Lit(7) {
		t.Errorf("negative literal behaviour wrong: %v", n)
	}
	if Lit(-3).Formula().Eval(map[Var]bool{3: false}) != true {
		t.Errorf("negative literal formula should be true when var false")
	}
}

func TestStringWithNames(t *testing.T) {
	names := map[Var]string{1: "cpu", 2: "mem"}
	f := Or(Not(V(1)), V(2))
	if got, want := f.StringWithNames(names), "!cpu | mem"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// assignFromBits builds an assignment for vars 1..n from the low bits of seed.
func assignFromBits(n int, seed uint64) map[Var]bool {
	env := make(map[Var]bool, n)
	for i := 0; i < n; i++ {
		env[Var(i+1)] = seed&(1<<uint(i)) != 0
	}
	return env
}

// randomFormula deterministically builds a formula over vars 1..nvars
// from a seed; used by the property tests below.
func randomFormula(seed uint64, nvars, depth int) *Formula {
	if depth == 0 || seed%7 == 0 {
		v := Var(int(seed%uint64(nvars)) + 1)
		if seed%2 == 0 {
			return V(v)
		}
		return Not(V(v))
	}
	next := seed*6364136223846793005 + 1442695040888963407
	a := randomFormula(next, nvars, depth-1)
	b := randomFormula(next^0x9e3779b97f4a7c15, nvars, depth-1)
	switch seed % 5 {
	case 0:
		return And(a, b)
	case 1:
		return Or(a, b)
	case 2:
		return Implies(a, b)
	case 3:
		return Iff(a, b)
	default:
		return Xor(a, b)
	}
}

func TestPropertyDoubleNegationEval(t *testing.T) {
	prop := func(seed uint64, bits uint64) bool {
		f := randomFormula(seed, 4, 4)
		env := assignFromBits(4, bits)
		return Not(Not(f)).Eval(env) == f.Eval(env)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	prop := func(seed uint64, bits uint64) bool {
		a := randomFormula(seed, 4, 3)
		b := randomFormula(seed^0xdeadbeef, 4, 3)
		env := assignFromBits(4, bits)
		return Not(And(a, b)).Eval(env) == Or(Not(a), Not(b)).Eval(env)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidVariablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("V(0) should panic")
		}
	}()
	V(0)
}

func TestNNFStructure(t *testing.T) {
	f := Not(And(V(1), Or(Not(V(2)), V(3))))
	g := NNF(f)
	if !IsNNF(g) {
		t.Fatalf("NNF result not in NNF: %v", g)
	}
	// !(1 & (!2 | 3)) == !1 | (2 & !3)
	if got, want := g.String(), "!x1 | (x2 & !x3)"; got != want {
		t.Errorf("NNF = %q, want %q", got, want)
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	prop := func(seed uint64, bits uint64) bool {
		f := randomFormula(seed, 4, 4)
		g := NNF(f)
		if !IsNNF(g) {
			return false
		}
		env := assignFromBits(4, bits)
		return f.Eval(env) == g.Eval(env)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsNNF(t *testing.T) {
	if !IsNNF(And(V(1), Not(V(2)))) {
		t.Error("literal conjunction is NNF")
	}
	if IsNNF(Not(And(V(1), V(2)))) {
		t.Error("negated conjunction is not NNF")
	}
	if !IsNNF(True()) || !IsNNF(False()) {
		t.Error("constants are NNF")
	}
}

func TestNNFConstants(t *testing.T) {
	if NNF(Not(True())) != False() {
		t.Error("NNF(!true) should be false")
	}
	if NNF(Not(False())) != True() {
		t.Error("NNF(!false) should be true")
	}
}
