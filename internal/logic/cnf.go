package logic

import (
	"fmt"
	"strings"
)

// Clause is a disjunction of literals.
type Clause []Lit

// CNF is a conjunction of clauses over variables 1..NumVars.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// AddClause appends a clause, growing NumVars as needed.
func (c *CNF) AddClause(lits ...Lit) {
	for _, l := range lits {
		if int(l.Var()) > c.NumVars {
			c.NumVars = int(l.Var())
		}
	}
	c.Clauses = append(c.Clauses, Clause(lits))
}

// String renders the CNF in DIMACS-like notation (for debugging).
func (c *CNF) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p cnf %d %d\n", c.NumVars, len(c.Clauses))
	for _, cl := range c.Clauses {
		for _, l := range cl {
			fmt.Fprintf(&b, "%d ", int(l))
		}
		b.WriteString("0\n")
	}
	return b.String()
}

// Pool allocates propositional variables. The zero value is ready to use.
type Pool struct {
	next Var
}

// NewPool returns a pool whose first allocated variable is 1.
func NewPool() *Pool { return &Pool{} }

// Fresh allocates and returns a new variable.
func (p *Pool) Fresh() Var {
	p.next++
	return p.next
}

// Reserve ensures that variables 1..v are considered allocated, so that
// subsequent Fresh calls return variables greater than v.
func (p *Pool) Reserve(v Var) {
	if v > p.next {
		p.next = v
	}
}

// NumVars returns the number of variables allocated so far.
func (p *Pool) NumVars() int { return int(p.next) }

// Tseitin converts f into CNF using the Tseitin transform, allocating
// auxiliary variables from pool. It returns a literal whose truth is
// equivalent to f's under the produced clauses; callers that want to
// assert f should add the returned literal as a unit clause (ToCNF does
// this).
//
// The encoding uses the polarity-insensitive (full equivalence) form,
// which keeps the clause count modest while remaining correct for reuse
// of subterms in both polarities.
func Tseitin(f *Formula, pool *Pool, cnf *CNF) Lit {
	t := &tseitin{pool: pool, cnf: cnf, cache: make(map[*Formula]Lit)}
	return t.lit(f)
}

// ToCNF converts f into an equisatisfiable CNF, asserting f itself.
// Variables of f are preserved; auxiliary variables come from pool,
// which must already have all of f's variables reserved.
func ToCNF(f *Formula, pool *Pool) *CNF {
	for _, v := range f.Vars() {
		pool.Reserve(v)
	}
	cnf := &CNF{NumVars: pool.NumVars()}
	root := Tseitin(f, pool, cnf)
	cnf.AddClause(root)
	if pool.NumVars() > cnf.NumVars {
		cnf.NumVars = pool.NumVars()
	}
	return cnf
}

type tseitin struct {
	pool  *Pool
	cnf   *CNF
	cache map[*Formula]Lit

	constTrue Lit // lazily allocated literal constrained to true
}

func (t *tseitin) trueLit() Lit {
	if t.constTrue == 0 {
		v := t.pool.Fresh()
		t.constTrue = Lit(v)
		t.cnf.AddClause(t.constTrue)
	}
	return t.constTrue
}

func (t *tseitin) lit(f *Formula) Lit {
	if l, ok := t.cache[f]; ok {
		return l
	}
	var l Lit
	switch f.kind {
	case KindTrue:
		l = t.trueLit()
	case KindFalse:
		l = t.trueLit().Neg()
	case KindVar:
		l = Lit(f.v)
	case KindNot:
		l = t.lit(f.args[0]).Neg()
	case KindAnd:
		l = t.gate(f.args, true)
	case KindOr:
		l = t.gate(f.args, false)
	default:
		panic(fmt.Sprintf("logic: unknown kind %v", f.kind))
	}
	t.cache[f] = l
	return l
}

// gate encodes an AND gate (conj=true) or OR gate (conj=false) over the
// given arguments, returning the gate output literal.
func (t *tseitin) gate(args []*Formula, conj bool) Lit {
	lits := make([]Lit, len(args))
	for i, a := range args {
		lits[i] = t.lit(a)
	}
	out := Lit(t.pool.Fresh())
	if conj {
		// out -> l_i  and  (l_1 & ... & l_n) -> out
		long := make(Clause, 0, len(lits)+1)
		for _, l := range lits {
			t.cnf.AddClause(out.Neg(), l)
			long = append(long, l.Neg())
		}
		long = append(long, out)
		t.cnf.AddClause(long...)
	} else {
		// l_i -> out  and  out -> (l_1 | ... | l_n)
		long := make(Clause, 0, len(lits)+1)
		for _, l := range lits {
			t.cnf.AddClause(l.Neg(), out)
			long = append(long, l)
		}
		long = append(long, out.Neg())
		t.cnf.AddClause(long...)
	}
	return out
}

// AtMostOnePairwise appends the pairwise at-most-one encoding over lits
// to cnf: O(n²) binary clauses, no auxiliary variables.
func AtMostOnePairwise(lits []Lit, cnf *CNF) {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			cnf.AddClause(lits[i].Neg(), lits[j].Neg())
		}
	}
}

// AtMostOneSequential appends the sequential-counter at-most-one
// encoding over lits to cnf: O(n) clauses with n-1 auxiliary variables
// allocated from pool. For large groups this is much smaller than the
// pairwise encoding; DESIGN.md §5 benchmarks the two against each other.
func AtMostOneSequential(lits []Lit, pool *Pool, cnf *CNF) {
	n := len(lits)
	if n <= 1 {
		return
	}
	if n <= 4 {
		AtMostOnePairwise(lits, cnf)
		return
	}
	// s_i = "some literal among lits[0..i] is true"
	s := make([]Lit, n-1)
	for i := range s {
		s[i] = Lit(pool.Fresh())
	}
	if pool.NumVars() > cnf.NumVars {
		cnf.NumVars = pool.NumVars()
	}
	cnf.AddClause(lits[0].Neg(), s[0])
	for i := 1; i < n-1; i++ {
		cnf.AddClause(lits[i].Neg(), s[i])
		cnf.AddClause(s[i-1].Neg(), s[i])
		cnf.AddClause(lits[i].Neg(), s[i-1].Neg())
	}
	cnf.AddClause(lits[n-1].Neg(), s[n-2].Neg())
}
