package logic

import (
	"strings"
	"testing"
	"testing/quick"
)

// satisfiableBrute reports whether the CNF has a satisfying assignment,
// by exhaustive search. Only usable for small variable counts.
func satisfiableBrute(c *CNF) bool {
	n := c.NumVars
	if n > 22 {
		panic("satisfiableBrute: too many variables")
	}
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		if evalCNF(c, mask) {
			return true
		}
	}
	return false
}

func evalCNF(c *CNF, mask uint64) bool {
	for _, cl := range c.Clauses {
		sat := false
		for _, l := range cl {
			val := mask&(1<<uint(l.Var()-1)) != 0
			if val == l.Positive() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// satisfiableFormulaBrute reports satisfiability of f by exhaustive search.
func satisfiableFormulaBrute(f *Formula) bool {
	vars := f.Vars()
	if len(vars) > 20 {
		panic("too many variables")
	}
	for mask := uint64(0); mask < 1<<uint(len(vars)); mask++ {
		env := make(map[Var]bool, len(vars))
		for i, v := range vars {
			env[v] = mask&(1<<uint(i)) != 0
		}
		if f.Eval(env) {
			return true
		}
	}
	return false
}

func TestToCNFEquisatisfiable(t *testing.T) {
	prop := func(seed uint64) bool {
		f := randomFormula(seed, 3, 3)
		pool := NewPool()
		cnf := ToCNF(f, pool)
		if cnf.NumVars > 20 {
			// brute force would be too slow; skip this instance (the
			// surrounding MaxCount keeps plenty of checked cases)
			return true
		}
		return satisfiableBrute(cnf) == satisfiableFormulaBrute(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestToCNFPreservesModels(t *testing.T) {
	// For every assignment of the original variables, the Tseitin CNF
	// restricted to that assignment must be satisfiable (extendable to
	// the aux vars) exactly when the formula holds.
	f := And(Or(V(1), Not(V(2))), Iff(V(2), V(3)), Not(And(V(1), V(3))))
	pool := NewPool()
	cnf := ToCNF(f, pool)
	for mask := uint64(0); mask < 8; mask++ {
		env := assignFromBits(3, mask)
		// Fix vars 1..3 via unit clauses, then test extension.
		fixed := &CNF{NumVars: cnf.NumVars, Clauses: append([]Clause{}, cnf.Clauses...)}
		for v, val := range env {
			l := Lit(v)
			if !val {
				l = l.Neg()
			}
			fixed.AddClause(l)
		}
		if got, want := satisfiableBrute(fixed), f.Eval(env); got != want {
			t.Errorf("mask %03b: CNF extendable=%v, formula=%v", mask, got, want)
		}
	}
}

func TestToCNFTrivial(t *testing.T) {
	pool := NewPool()
	if !satisfiableBrute(ToCNF(True(), pool)) {
		t.Error("CNF of true should be satisfiable")
	}
	pool2 := NewPool()
	if satisfiableBrute(ToCNF(False(), pool2)) {
		t.Error("CNF of false should be unsatisfiable")
	}
}

func TestPoolFreshAndReserve(t *testing.T) {
	p := NewPool()
	if v := p.Fresh(); v != 1 {
		t.Fatalf("first Fresh = %d, want 1", v)
	}
	p.Reserve(10)
	if v := p.Fresh(); v != 11 {
		t.Fatalf("Fresh after Reserve(10) = %d, want 11", v)
	}
	p.Reserve(5) // no-op: already past 5
	if v := p.Fresh(); v != 12 {
		t.Fatalf("Fresh = %d, want 12", v)
	}
	if p.NumVars() != 12 {
		t.Fatalf("NumVars = %d, want 12", p.NumVars())
	}
}

func TestCNFString(t *testing.T) {
	var c CNF
	c.AddClause(1, -2)
	c.AddClause(3)
	s := c.String()
	if !strings.HasPrefix(s, "p cnf 3 2\n") {
		t.Errorf("unexpected DIMACS header: %q", s)
	}
	if !strings.Contains(s, "1 -2 0") || !strings.Contains(s, "3 0") {
		t.Errorf("unexpected DIMACS body: %q", s)
	}
}

func countTrue(lits []Lit, mask uint64) int {
	n := 0
	for _, l := range lits {
		val := mask&(1<<uint(l.Var()-1)) != 0
		if val == l.Positive() {
			n++
		}
	}
	return n
}

func TestAtMostOneEncodings(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		lits := make([]Lit, n)
		for i := range lits {
			lits[i] = Lit(i + 1)
		}

		t.Run("pairwise", func(t *testing.T) {
			cnf := &CNF{NumVars: n}
			AtMostOnePairwise(lits, cnf)
			for mask := uint64(0); mask < 1<<uint(n); mask++ {
				want := countTrue(lits, mask) <= 1
				// Pairwise has no aux vars: direct evaluation.
				if got := evalCNF(cnf, mask); got != want {
					t.Fatalf("n=%d mask=%b: got %v, want %v", n, mask, got, want)
				}
			}
		})

		t.Run("sequential", func(t *testing.T) {
			pool := NewPool()
			pool.Reserve(Var(n))
			cnf := &CNF{NumVars: n}
			AtMostOneSequential(lits, pool, cnf)
			// With aux vars: check extendability per original assignment.
			for mask := uint64(0); mask < 1<<uint(n); mask++ {
				fixed := &CNF{NumVars: cnf.NumVars, Clauses: append([]Clause{}, cnf.Clauses...)}
				if fixed.NumVars < n {
					fixed.NumVars = n
				}
				for i := 0; i < n; i++ {
					l := Lit(i + 1)
					if mask&(1<<uint(i)) == 0 {
						l = l.Neg()
					}
					fixed.AddClause(l)
				}
				want := countTrue(lits, mask) <= 1
				if got := satisfiableBrute(fixed); got != want {
					t.Fatalf("n=%d mask=%b: got %v, want %v", n, mask, got, want)
				}
			}
		})
	}
}
