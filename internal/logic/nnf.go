package logic

import "fmt"

// NNF returns the negation normal form of f: negations appear only
// directly on variables, with conjunction and disjunction as the only
// connectives. The transformation applies De Morgan's laws top-down and
// is linear in the size of the formula.
func NNF(f *Formula) *Formula {
	return nnf(f, false)
}

func nnf(f *Formula, negated bool) *Formula {
	switch f.kind {
	case KindTrue:
		if negated {
			return falseFormula
		}
		return trueFormula
	case KindFalse:
		if negated {
			return trueFormula
		}
		return falseFormula
	case KindVar:
		if negated {
			return Not(f)
		}
		return f
	case KindNot:
		return nnf(f.args[0], !negated)
	case KindAnd:
		args := make([]*Formula, len(f.args))
		for i, a := range f.args {
			args[i] = nnf(a, negated)
		}
		if negated {
			return Or(args...)
		}
		return And(args...)
	case KindOr:
		args := make([]*Formula, len(f.args))
		for i, a := range f.args {
			args[i] = nnf(a, negated)
		}
		if negated {
			return And(args...)
		}
		return Or(args...)
	default:
		panic(fmt.Sprintf("logic: unknown kind %v", f.kind))
	}
}

// IsNNF reports whether f is in negation normal form.
func IsNNF(f *Formula) bool {
	switch f.kind {
	case KindTrue, KindFalse, KindVar:
		return true
	case KindNot:
		return f.args[0].kind == KindVar
	case KindAnd, KindOr:
		for _, a := range f.args {
			if !IsNNF(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
