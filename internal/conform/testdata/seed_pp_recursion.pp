#define A B A
#define B A B
v = <A>;
w = <B>;
