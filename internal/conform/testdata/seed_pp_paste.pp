#define GLUE(a, b) a ## b
#define NAME(n) uart ## n
#define WIDE(hi, lo) ((hi) << 16 | (lo))
GLUE(va, lue) = <WIDE(1, 2)>;
ref = <&NAME(0)>;
