#ifdef NEVER_SET
#ifndef ALSO_OPEN
dead;
#else
also-dead;
