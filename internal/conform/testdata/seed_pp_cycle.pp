#include "loop.h"
unreached;
