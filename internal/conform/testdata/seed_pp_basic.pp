#include "inc.h"
#define BASE 0x1000
#define REG(n) (BASE + (n) * 0x100)
#ifdef FROM_INC
/dts-v1/;
/ {
	dev@1000 {
		reg = <REG(0) 0x100>;
	};
};
#endif
