package conform

import (
	"fmt"
	"math/rand"

	"llhsc/internal/addr"
)

// NearRegionPairs emits region pairs whose geometry is adversarial for
// the overlap checkers (ROADMAP item 5): bases drawn from one small
// cluster and sizes chosen so the two regions frequently abut exactly,
// overlap by a handful of bytes, or miss each other by a handful of
// bytes. Edge shapes — empty regions, regions ending exactly at
// 2^width, regions straddling the top of the address space — are mixed
// in at a fixed rate. The word-tier differential tests lift these
// concrete pairs into concrete, affine and symbolic bound terms and
// check the interval decider against the bit-blaster on each.
//
// The same seed always yields the same pairs.
func NearRegionPairs(seed int64, n, width int) [][2]addr.Region {
	rng := rand.New(rand.NewSource(seed))
	max := uint64(1) << uint(width) // wraps to 0 at width 64: top-of-space arithmetic below still works mod 2^64
	cluster := uint64(1) << 16
	if width < 16 {
		cluster = uint64(1) << uint(width)
	}
	pairs := make([][2]addr.Region, n)
	for i := range pairs {
		a := addr.Region{
			Base: rng.Uint64() % cluster,
			Size: 1 + uint64(rng.Intn(1<<8)),
			Path: fmt.Sprintf("/pair%d/a", i),
			Kind: addr.KindDevice,
		}
		b := addr.Region{
			Path: fmt.Sprintf("/pair%d/b", i),
			Kind: addr.KindDevice,
			Size: 1 + uint64(rng.Intn(1<<8)),
		}
		switch rng.Intn(6) {
		case 0: // b starts exactly where a ends — the abutting near-miss
			b.Base = a.Base + a.Size
		case 1: // b overlaps a's tail by a few bytes
			b.Base = a.Base + a.Size - uint64(1+rng.Intn(4))
		case 2: // b misses a's tail by a few bytes
			b.Base = a.Base + a.Size + uint64(1+rng.Intn(4))
		case 3: // b nested inside (or poking just past) a
			b.Base = a.Base + uint64(rng.Intn(int(a.Size)))
		case 4: // independent draw from the same cluster
			b.Base = rng.Uint64() % cluster
		case 5: // top-of-space shapes
			a.Base = max - a.Size - uint64(rng.Intn(4))
			b.Base = max - uint64(1+rng.Intn(int(b.Size)+4))
		}
		if rng.Intn(8) == 0 {
			b.Size = 0 // empty regions contain nothing
		}
		pairs[i] = [2]addr.Region{a, b}
	}
	return pairs
}
