package conform

import (
	"fmt"
	"math/rand"
	"strings"

	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// Features is the fixed feature alphabet used by generated delta
// modules and configurations.
var Features = []string{"fa", "fb", "fc"}

// Generator emits structurally valid DTS compilation units and delta
// module files from a seeded PRNG, in the spirit of grammar-based,
// semantically constrained input generation (Input Invariants,
// Steinhöfel & Zeller): every output parses, references only defined
// labels, avoids division by zero, and keeps delta write sets
// conflict-free, so fuzzing and the oracle suite exercise the deep
// paths of the parser, printer, dtb codec and delta engine instead of
// dying at the first syntax error.
type Generator struct {
	rng      *rand.Rand
	labels   []string // labels usable as reference targets
	paths    []string // absolute node paths emitted so far
	labelSeq int
	nodeSeq  int
}

// NewGenerator returns a deterministic generator: the same seed always
// yields the same sequence of outputs.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Source emits one random DTS compilation unit covering the grammar's
// interesting corners: /memreserve/, labels and phandle references,
// unit addresses, cell expressions (all operators, all literal bases,
// character literals), string escapes, byte arrays, string lists,
// /bits/ arrays, label-extension blocks (including forward references
// placed before the node that defines the label, which dtc resolves in
// a second pass) and in-body /delete-node/.
func (g *Generator) Source() string {
	g.labels, g.paths = nil, nil
	// The root node is generated first into its own buffer so extension
	// blocks can be placed before it in the output, turning their label
	// and cell references into forward references.
	var root strings.Builder
	root.WriteString("/ {\n")
	g.paths = append(g.paths, "/")
	g.genBody(&root, "", 1)
	root.WriteString("};\n")

	var b strings.Builder
	b.WriteString("/dts-v1/;\n\n")
	for i := g.rng.Intn(3); i > 0; i-- {
		// size is forced nonzero: an all-zero entry is the FDT
		// memreserve terminator and cannot survive a dtb round trip
		fmt.Fprintf(&b, "/memreserve/ %s %s;\n",
			g.literal(uint64(g.rng.Uint32())), g.literal(uint64(g.rng.Uint32())|1))
	}
	if len(g.labels) > 0 && g.rng.Intn(2) == 0 {
		// forward extension block: both the target label and the in-cell
		// reference are defined only later, inside the root node
		lbl := g.labels[g.rng.Intn(len(g.labels))]
		ref := g.labels[g.rng.Intn(len(g.labels))]
		fmt.Fprintf(&b, "&%s {\n\tfwd-prop = <%s &%s>;\n};\n\n",
			lbl, g.literal(uint64(g.rng.Uint32())), ref)
	}
	b.WriteString(root.String())
	if len(g.labels) > 0 && g.rng.Intn(2) == 0 {
		// label-extension block, exercising dtc merge semantics
		lbl := g.labels[g.rng.Intn(len(g.labels))]
		fmt.Fprintf(&b, "\n&%s {\n\text-prop = <%s>;\n};\n", lbl, g.literal(uint64(g.rng.Uint32())))
	}
	return b.String()
}

// OverlaySource emits a random /plugin/ overlay unit whose fragments
// target labels and paths that exist in base, so the overlay always
// applies cleanly via dts.ApplyOverlay.
func (g *Generator) OverlaySource(base *dts.Tree) string {
	var labels, paths []string
	base.Root.Walk(func(path string, n *dts.Node) bool {
		if n.Label != "" {
			labels = append(labels, n.Label)
		}
		if path != "/" {
			paths = append(paths, path)
		}
		return true
	})
	var b strings.Builder
	b.WriteString("/dts-v1/;\n/plugin/;\n\n")
	if g.rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "/ {\n\toverlay-marker = <%s>;\n};\n\n", g.literal(uint64(g.rng.Uint32())))
	}
	for i, n := 0, 1+g.rng.Intn(3); i < n; i++ {
		switch {
		case len(labels) > 0 && (len(paths) == 0 || g.rng.Intn(2) == 0):
			fmt.Fprintf(&b, "&%s {\n", labels[g.rng.Intn(len(labels))])
		case len(paths) > 0:
			fmt.Fprintf(&b, "&{%s} {\n", paths[g.rng.Intn(len(paths))])
		default:
			continue // base has no addressable nodes
		}
		fmt.Fprintf(&b, "\tov-prop-%d = <%s>;\n", i, g.literal(uint64(g.rng.Uint32())))
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "\tov-node-%d {\n\t\tcompatible = \"gen,ov\";\n\t};\n", i)
		}
		b.WriteString("};\n\n")
	}
	return b.String()
}

// genBody writes properties and children of one node. prefix is the
// node's path ("" for root, so children get "/name").
func (g *Generator) genBody(b *strings.Builder, prefix string, depth int) {
	indent := strings.Repeat("\t", depth)
	nprops := g.rng.Intn(4)
	for i := 0; i < nprops; i++ {
		fmt.Fprintf(b, "%s%s", indent, g.genProperty(fmt.Sprintf("p%d-%d", depth, i)))
	}
	if depth > 4 {
		return
	}
	nchildren := g.rng.Intn(4 - depth/2)
	for i := 0; i < nchildren; i++ {
		name := g.genNodeName()
		label := ""
		if g.rng.Intn(3) == 0 {
			label = fmt.Sprintf("l%d", g.labelSeq)
			g.labelSeq++
		}
		doomed := g.rng.Intn(8) == 0 // deleted again right after
		b.WriteString(indent)
		if label != "" {
			b.WriteString(label + ": ")
		}
		b.WriteString(name + " {\n")
		if doomed {
			// keep the doomed subtree trivial so no labels or paths
			// leak out of it
			fmt.Fprintf(b, "%s\tstatus = \"disabled\";\n", indent)
		} else {
			g.genBody(b, prefix+"/"+name, depth+1)
		}
		fmt.Fprintf(b, "%s};\n", indent)
		if doomed {
			fmt.Fprintf(b, "%s/delete-node/ %s;\n", indent, name)
			continue
		}
		g.paths = append(g.paths, prefix+"/"+name)
		if label != "" {
			g.labels = append(g.labels, label)
		}
	}
}

func (g *Generator) genNodeName() string {
	bases := []string{"cpu", "uart", "mem", "bus", "dev", "timer", "gpio"}
	name := fmt.Sprintf("%s%d", bases[g.rng.Intn(len(bases))], g.nodeSeq)
	g.nodeSeq++
	if g.rng.Intn(2) == 0 {
		name += fmt.Sprintf("@%x", g.rng.Intn(1<<30))
	}
	return name
}

// genProperty emits one property definition line (terminated ";\n").
func (g *Generator) genProperty(name string) string {
	switch g.rng.Intn(9) {
	case 0: // boolean marker
		return name + ";\n"
	case 1: // single string
		return fmt.Sprintf("%s = %s;\n", name, g.genString())
	case 2: // string list
		return fmt.Sprintf("%s = %s, %s;\n", name, g.genString(), g.genString())
	case 3: // byte array
		return fmt.Sprintf("%s = [%s];\n", name, g.genBytes())
	case 4: // path or label reference
		if len(g.labels) > 0 && g.rng.Intn(2) == 0 {
			return fmt.Sprintf("%s = &%s;\n", name, g.labels[g.rng.Intn(len(g.labels))])
		}
		return fmt.Sprintf("%s = &{%s};\n", name, g.paths[g.rng.Intn(len(g.paths))])
	case 5: // mixed chunks
		return fmt.Sprintf("%s = %s, <%s>, [%s];\n", name, g.genString(), g.genCells(), g.genBytes())
	case 6: // /bits/ array at a non-default width
		widths := []uint{8, 16, 64}
		w := widths[g.rng.Intn(len(widths))]
		n := 1 + g.rng.Intn(4)
		items := make([]string, n)
		for i := range items {
			v := g.rng.Uint64()
			if w < 64 {
				v &= 1<<w - 1
			}
			items[i] = g.literal(v)
		}
		return fmt.Sprintf("%s = /bits/ %d <%s>;\n", name, w, strings.Join(items, " "))
	default: // cells
		return fmt.Sprintf("%s = <%s>;\n", name, g.genCells())
	}
}

func (g *Generator) genCells() string {
	n := 1 + g.rng.Intn(4)
	items := make([]string, n)
	for i := range items {
		if len(g.labels) > 0 && g.rng.Intn(6) == 0 {
			items[i] = "&" + g.labels[g.rng.Intn(len(g.labels))]
			continue
		}
		items[i], _ = g.genExpr(2)
	}
	return strings.Join(items, " ")
}

func (g *Generator) genBytes() string {
	n := 1 + g.rng.Intn(6)
	runs := make([]string, n)
	for i := range runs {
		runs[i] = fmt.Sprintf("%02x", byte(g.rng.Intn(256)))
	}
	return strings.Join(runs, " ")
}

// genString returns a string literal (with quotes) mixing plain
// printable characters with every escape class the lexer supports.
func (g *Generator) genString() string {
	var b strings.Builder
	b.WriteByte('"')
	n := g.rng.Intn(9)
	for i := 0; i < n; i++ {
		switch g.rng.Intn(10) {
		case 0:
			b.WriteString(`\n`)
		case 1:
			b.WriteString(`\t`)
		case 2:
			fmt.Fprintf(&b, `\x%02x`, byte(g.rng.Intn(256)))
		case 3:
			fmt.Fprintf(&b, `\%03o`, byte(g.rng.Intn(256)))
		case 4:
			b.WriteString(`\\`)
		case 5:
			b.WriteString(`\"`)
		default:
			c := byte(' ' + g.rng.Intn('~'-' '))
			if c == '"' || c == '\\' {
				c = '.' // must be escaped in DTS strings; covered above
			}
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// literal renders v in a random base accepted by the C-conformant
// lexer: decimal, hexadecimal or octal.
func (g *Generator) literal(v uint64) string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%d", v)
	case 1:
		return fmt.Sprintf("0x%x", v)
	default:
		if v == 0 {
			return "0"
		}
		return fmt.Sprintf("0%o", v)
	}
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// genExpr returns the source text of a random cell expression together
// with its value under dtc semantics (unsigned 64-bit, eager ternary).
// Division and modulo by zero are steered away from, shift counts stay
// below 32, and every compound expression is parenthesized so it is
// valid in cell-item position.
func (g *Generator) genExpr(depth int) (string, uint64) {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(6) == 0 {
			c := byte('A' + g.rng.Intn(26))
			return fmt.Sprintf("'%c'", c), uint64(c)
		}
		v := uint64(g.rng.Uint32())
		return g.literal(v), v
	}
	switch g.rng.Intn(10) {
	case 0: // unary
		sub, v := g.genExpr(depth - 1)
		switch g.rng.Intn(3) {
		case 0:
			return "(-" + sub + ")", -v
		case 1:
			return "(~" + sub + ")", ^v
		default:
			return "(!" + sub + ")", boolToU64(v == 0)
		}
	case 1: // ternary
		c, cv := g.genExpr(depth - 1)
		a, av := g.genExpr(depth - 1)
		b, bv := g.genExpr(depth - 1)
		v := bv
		if cv != 0 {
			v = av
		}
		return "(" + c + " ? " + a + " : " + b + ")", v
	case 2: // shift by a small constant
		sub, v := g.genExpr(depth - 1)
		sh := g.rng.Intn(32)
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("(%s << %d)", sub, sh), v << sh
		}
		return fmt.Sprintf("(%s >> %d)", sub, sh), v >> sh
	default: // binary
		a, av := g.genExpr(depth - 1)
		bs, bv := g.genExpr(depth - 1)
		ops := []string{"+", "-", "*", "/", "%", "&", "|", "^",
			"<", ">", "<=", ">=", "==", "!=", "&&", "||"}
		op := ops[g.rng.Intn(len(ops))]
		if (op == "/" || op == "%") && bv == 0 {
			op = "|"
		}
		var v uint64
		switch op {
		case "+":
			v = av + bv
		case "-":
			v = av - bv
		case "*":
			v = av * bv
		case "/":
			v = av / bv
		case "%":
			v = av % bv
		case "&":
			v = av & bv
		case "|":
			v = av | bv
		case "^":
			v = av ^ bv
		case "<":
			v = boolToU64(av < bv)
		case ">":
			v = boolToU64(av > bv)
		case "<=":
			v = boolToU64(av <= bv)
		case ">=":
			v = boolToU64(av >= bv)
		case "==":
			v = boolToU64(av == bv)
		case "!=":
			v = boolToU64(av != bv)
		case "&&":
			v = boolToU64(av != 0 && bv != 0)
		case "||":
			v = boolToU64(av != 0 || bv != 0)
		}
		return "(" + a + " " + op + " " + bs + ")", v
	}
}

// DeltaSource emits a random delta-module file whose operations target
// nodes of t. Every delta is "after" all previous ones, so any pair of
// active deltas is totally ordered and application can never fail with
// an ambiguity error; removed properties are tracked so no property is
// removed twice.
func (g *Generator) DeltaSource(t *dts.Tree) string {
	type nodeInfo struct {
		path  string
		props []string
	}
	var nodes []nodeInfo
	t.Root.Walk(func(path string, n *dts.Node) bool {
		var props []string
		for _, p := range n.Properties {
			props = append(props, p.Name)
		}
		nodes = append(nodes, nodeInfo{path: path, props: props})
		return true
	})
	removed := make(map[string]bool)
	var b strings.Builder
	nDeltas := 1 + g.rng.Intn(3)
	for i := 0; i < nDeltas; i++ {
		fmt.Fprintf(&b, "delta gd%d", i)
		if i > 0 {
			deps := make([]string, i)
			for j := range deps {
				deps[j] = fmt.Sprintf("gd%d", j)
			}
			fmt.Fprintf(&b, " after %s", strings.Join(deps, ", "))
		}
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " when %s", g.genWhen())
		}
		b.WriteString(" {\n")
		for k := 1 + g.rng.Intn(2); k > 0; k-- {
			ni := nodes[g.rng.Intn(len(nodes))]
			op := g.rng.Intn(3)
			if op == 2 {
				// pick a not-yet-removed property, else fall back
				prop := ""
				for _, p := range ni.props {
					if !removed[ni.path+"#"+p] {
						prop = p
						break
					}
				}
				if prop == "" {
					op = 0
				} else {
					removed[ni.path+"#"+prop] = true
					fmt.Fprintf(&b, "    removes property %s %s;\n", ni.path, prop)
					continue
				}
			}
			switch op {
			case 0:
				fmt.Fprintf(&b, "    modifies %s {\n        gen-prop-%d-%d = <%s>;\n    }\n",
					ni.path, i, k, g.literal(uint64(g.rng.Uint32())))
			case 1:
				fmt.Fprintf(&b, "    adds binding %s {\n        gnode%d@%x {\n            compatible = \"gen,dev\";\n        };\n    }\n",
					ni.path, g.nodeSeq, g.rng.Intn(1<<16))
				g.nodeSeq++
			}
		}
		b.WriteString("}\n\n")
	}
	return b.String()
}

// genWhen returns a random activation condition over Features.
func (g *Generator) genWhen() string {
	f := func() string { return Features[g.rng.Intn(len(Features))] }
	switch g.rng.Intn(5) {
	case 0:
		return f()
	case 1:
		return "!" + f()
	case 2:
		return fmt.Sprintf("%s && %s", f(), f())
	case 3:
		return fmt.Sprintf("%s || !%s", f(), f())
	default:
		return fmt.Sprintf("(%s || %s) && %s", f(), f(), f())
	}
}

// Config returns a random configuration over Features.
func (g *Generator) Config() featmodel.Configuration {
	cfg := make(featmodel.Configuration, len(Features))
	for _, f := range Features {
		cfg[f] = g.rng.Intn(2) == 0
	}
	return cfg
}
