package conform

import (
	"bytes"
	"errors"
	"fmt"

	"llhsc/internal/delta"
	"llhsc/internal/dtb"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// ParseOracle parses src and enforces the front end's error contract:
// a failed parse must surface as a *dts.ParseError (optionally
// wrapping a guard sentinel) — never as a panic or an untyped error.
// It returns (tree, nil) on success, (nil, nil) on a legitimate
// rejection, and (nil, violation) when the contract is broken.
func ParseOracle(file, src string, opts ...dts.ParseOption) (*dts.Tree, error) {
	tree, err := dts.Parse(file, src, opts...)
	if err == nil {
		return tree, nil
	}
	var pe *dts.ParseError
	if !errors.As(err, &pe) {
		return nil, fmt.Errorf("parse failure is %T, not *dts.ParseError: %w", err, err)
	}
	return nil, nil
}

// CheckRoundTrip verifies that Print is a faithful inverse of Parse:
// the printed text reparses, the reparse is structurally identical to
// the original tree, and a second print is byte-identical (canonical
// form is a fixed point).
func CheckRoundTrip(tree *dts.Tree) error {
	printed := tree.Print()
	re, err := dts.Parse("printed.dts", printed)
	if err != nil {
		return fmt.Errorf("printed output does not reparse: %v\nprinted:\n%s", err, printed)
	}
	if err := TreesStructurallyEqual(tree, re); err != nil {
		return fmt.Errorf("print/parse round trip not structurally identical: %v\nprinted:\n%s", err, printed)
	}
	if p2 := re.Print(); p2 != printed {
		return fmt.Errorf("print not idempotent:\nfirst:\n%s\nsecond:\n%s", printed, p2)
	}
	return nil
}

// CheckDTB verifies the binary codec by fixed point: Encode must
// succeed on a well-formed tree, its own output must Decode, and
// re-encoding the decoded tree must reproduce the blob bit-for-bit
// (semantic equality modulo label and expression erasure, which the
// binary format cannot represent).
func CheckDTB(tree *dts.Tree) error {
	blob, err := dtb.Encode(tree)
	if err != nil {
		return fmt.Errorf("dtb encode: %w", err)
	}
	return CheckDTBFixpoint(blob)
}

// CheckDTBFixpoint checks Encode(Decode(blob)) == blob for a blob
// produced by Encode.
func CheckDTBFixpoint(blob []byte) error {
	dec, err := dtb.Decode(blob)
	if err != nil {
		return fmt.Errorf("dtb decode of own encoding: %w", err)
	}
	blob2, err := dtb.Encode(dec)
	if err != nil {
		return fmt.Errorf("dtb re-encode of decoded tree: %w", err)
	}
	if !bytes.Equal(blob, blob2) {
		return fmt.Errorf("dtb encode/decode is not a fixed point (%d vs %d bytes)", len(blob), len(blob2))
	}
	return nil
}

// CheckDeltaCommute verifies that delta application commutes with the
// printer: applying the active deltas and re-parsing the printed
// product yields a tree structurally identical to the product itself.
func CheckDeltaCommute(core *dts.Tree, set *delta.Set, cfg featmodel.Configuration) error {
	product, _, err := set.Apply(core, cfg)
	if err != nil {
		return fmt.Errorf("delta apply: %w", err)
	}
	printed := product.Print()
	re, err := dts.Parse("product.dts", printed)
	if err != nil {
		return fmt.Errorf("delta product does not reparse: %v\nprinted:\n%s", err, printed)
	}
	if err := TreesStructurallyEqual(product, re); err != nil {
		return fmt.Errorf("delta product round trip: %v\nprinted:\n%s", err, printed)
	}
	return nil
}

// TreesStructurallyEqual compares two trees on everything the DTS
// syntax can express — node names, labels, property order and values
// (chunk-exact, including /bits/ widths), children order, memreserves,
// the /plugin/ flag and overlay fragments — ignoring only Origin
// metadata, which Print deliberately omits.
func TreesStructurallyEqual(a, b *dts.Tree) error {
	if len(a.MemReserves) != len(b.MemReserves) {
		return fmt.Errorf("%d vs %d memreserve entries", len(a.MemReserves), len(b.MemReserves))
	}
	for i, mr := range a.MemReserves {
		if mr != b.MemReserves[i] {
			return fmt.Errorf("memreserve %d: %+v vs %+v", i, mr, b.MemReserves[i])
		}
	}
	if a.Plugin != b.Plugin {
		return fmt.Errorf("plugin flag %v vs %v", a.Plugin, b.Plugin)
	}
	if len(a.Fragments) != len(b.Fragments) {
		return fmt.Errorf("%d vs %d overlay fragments", len(a.Fragments), len(b.Fragments))
	}
	for i, f := range a.Fragments {
		g := b.Fragments[i]
		if f.Ref != g.Ref || f.IsPath != g.IsPath {
			return fmt.Errorf("fragment %d: target &%s (path=%v) vs &%s (path=%v)",
				i, f.Ref, f.IsPath, g.Ref, g.IsPath)
		}
		if err := nodesEqual(fmt.Sprintf("fragment %d &%s", i, f.Ref), f.Node, g.Node); err != nil {
			return err
		}
	}
	return nodesEqual("/", a.Root, b.Root)
}

func nodesEqual(path string, a, b *dts.Node) error {
	if a.Name != b.Name {
		return fmt.Errorf("%s: name %q vs %q", path, a.Name, b.Name)
	}
	if a.Label != b.Label {
		return fmt.Errorf("%s: label %q vs %q", path, a.Label, b.Label)
	}
	if len(a.Properties) != len(b.Properties) {
		return fmt.Errorf("%s: %d vs %d properties", path, len(a.Properties), len(b.Properties))
	}
	for i, p := range a.Properties {
		q := b.Properties[i]
		if p.Name != q.Name {
			return fmt.Errorf("%s: property %d named %q vs %q", path, i, p.Name, q.Name)
		}
		if err := valuesEqual(p.Value, q.Value); err != nil {
			return fmt.Errorf("%s#%s: %v", path, p.Name, err)
		}
	}
	if len(a.Children) != len(b.Children) {
		return fmt.Errorf("%s: %d vs %d children", path, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		childPath := path + "/" + a.Children[i].Name
		if path == "/" {
			childPath = "/" + a.Children[i].Name
		}
		if err := nodesEqual(childPath, a.Children[i], b.Children[i]); err != nil {
			return err
		}
	}
	return nil
}

func valuesEqual(a, b dts.Value) error {
	if len(a.Chunks) != len(b.Chunks) {
		return fmt.Errorf("%d vs %d chunks", len(a.Chunks), len(b.Chunks))
	}
	for i, c := range a.Chunks {
		d := b.Chunks[i]
		if c.Kind != d.Kind {
			return fmt.Errorf("chunk %d: kind %d vs %d", i, c.Kind, d.Kind)
		}
		if c.Bits != d.Bits {
			return fmt.Errorf("chunk %d: /bits/ %d vs %d", i, c.Bits, d.Bits)
		}
		if c.Str != d.Str {
			return fmt.Errorf("chunk %d: string %q vs %q", i, c.Str, d.Str)
		}
		if c.Ref != d.Ref {
			return fmt.Errorf("chunk %d: ref %q vs %q", i, c.Ref, d.Ref)
		}
		if !bytes.Equal(c.Bytes, d.Bytes) {
			return fmt.Errorf("chunk %d: bytes % x vs % x", i, c.Bytes, d.Bytes)
		}
		if len(c.CellList) != len(d.CellList) {
			return fmt.Errorf("chunk %d: %d vs %d cells", i, len(c.CellList), len(d.CellList))
		}
		for j, cell := range c.CellList {
			if cell != d.CellList[j] {
				return fmt.Errorf("chunk %d cell %d: %+v vs %+v", i, j, cell, d.CellList[j])
			}
		}
	}
	return nil
}
