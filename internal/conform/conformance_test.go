package conform

import (
	"fmt"
	"strings"
	"testing"

	"llhsc/internal/dts"
)

// dtcConformanceCorpus is a table of cell expressions with the values
// dtc (the reference DeviceTree compiler) produces for them, covering
// C base-0 literal semantics, the full operator set at C precedence,
// eager ternary evaluation, char literals and unsigned 64-bit
// wrap-around. Each entry is compiled via the real parser.
var dtcConformanceCorpus = []struct {
	expr string
	want []uint32
}{
	// Integer literals, strtoull base-0 semantics.
	{"0", []uint32{0}},
	{"010", []uint32{8}},
	{"0777", []uint32{511}},
	{"00", []uint32{0}},
	{"0x10", []uint32{16}},
	{"0XFF", []uint32{255}},
	{"4294967295", []uint32{0xffffffff}},

	// Char literals are plain integers.
	{"'A'", []uint32{65}},
	{"'\\n'", []uint32{10}},
	{"'\\x41'", []uint32{65}},
	{"'\\0'", []uint32{0}},

	// Arithmetic and bitwise, C precedence.
	{"(017 + 1)", []uint32{16}},
	{"(2 + 3 * 4)", []uint32{14}},
	{"(100 % 7)", []uint32{2}},
	{"(1 << 4 | 1)", []uint32{17}},
	{"(0xf0 & 0x1f)", []uint32{0x10}},
	{"(0xf0 ^ 0xff)", []uint32{0x0f}},
	{"(~0)", []uint32{0xffffffff}},
	{"(1 << 2 >> 1)", []uint32{2}},

	// Comparisons yield 0/1; parens required around bare < and >.
	{"(2 > 1)", []uint32{1}},
	{"(1 > 2)", []uint32{0}},
	{"(2 >= 2)", []uint32{1}},
	{"(1 <= 0)", []uint32{0}},
	{"(3 == 3)", []uint32{1}},
	{"(3 != 3)", []uint32{0}},

	// Precedence: shift binds tighter than comparison, comparison
	// tighter than equality, equality tighter than bitwise.
	{"(1 << 2 > 3)", []uint32{1}},
	{"(1 | 2 == 3)", []uint32{1}},
	{"(1 & 2 == 2)", []uint32{1}},

	// Logical operators and negation.
	{"(1 && 2)", []uint32{1}},
	{"(1 && 0)", []uint32{0}},
	{"(0 || 3)", []uint32{1}},
	{"(0 || 0)", []uint32{0}},
	{"(!0)", []uint32{1}},
	{"(!5)", []uint32{0}},
	{"(!!5)", []uint32{1}},

	// Ternary, eager both-arms evaluation, right associative.
	{"(2 > 1 ? 10 : 20)", []uint32{10}},
	{"(0 ? 10 : 20)", []uint32{20}},
	{"(1 ? 2 : 0 ? 3 : 4)", []uint32{2}},
	{"(0 ? 2 : 0 ? 3 : 4)", []uint32{4}},
	{"('A' > 'Z' ? 'a' : 'z')", []uint32{'z'}},

	// Unsigned 64-bit arithmetic truncated to a cell.
	{"(-1)", []uint32{0xffffffff}},
	{"(-1 > 0)", []uint32{1}}, // -1 is 0xffff... unsigned
	{"(0 - 1)", []uint32{0xffffffff}},
	{"(0xffffffffffffffff + 1)", []uint32{0}},
	{"(010 * 010)", []uint32{64}},

	// Multiple cells per property, mixed bases.
	{"1 010 0x10", []uint32{1, 8, 16}},
	{"(2 > 1 ? 10 : 20) 0777 'B'", []uint32{10, 511, 66}},
}

// dtcSourceConformanceCorpus covers whole-unit constructs whose dtc
// semantics can't be expressed as a single cell expression: /bits/
// arrays (values truncated to the element width, as dtc does),
// forward label references in both extension and cell position,
// root-level /delete-node/ by reference, /omit-if-no-ref/, and
// /plugin/ overlay fragments. Each source must parse and its canonical
// print must contain every `want` substring.
var dtcSourceConformanceCorpus = []struct {
	name string
	src  string
	want []string
}{
	{
		name: "bits widths truncate",
		src:  "/dts-v1/;\n/ { a = /bits/ 8 <0x1ff 2>; b = /bits/ 16 <0x12345 3>; c = /bits/ 64 <0x100000000 4>; };\n",
		want: []string{"/bits/ 8 <0xff 0x2>", "/bits/ 16 <0x2345 0x3>", "/bits/ 64 <0x100000000 0x4>"},
	},
	{
		name: "forward label extension",
		src:  "/dts-v1/;\n&later { added = <1>; };\n/ { later: dev { base = <2>; }; };\n",
		want: []string{"later: dev", "added = <0x1>", "base = <0x2>"},
	},
	{
		name: "forward cell reference",
		src:  "/dts-v1/;\n/ { a { link = <&tgt 5>; }; tgt: b { }; };\n",
		want: []string{"link = <&tgt 0x5>", "tgt: b"},
	},
	{
		name: "delete-node by reference",
		src:  "/dts-v1/;\n/ { victim: dead { }; alive { }; };\n/delete-node/ &victim;\n",
		want: []string{"alive"},
	},
	{
		name: "omit-if-no-ref is accepted",
		src:  "/dts-v1/;\n/ { /omit-if-no-ref/ keep: spare { marker; }; };\n",
		want: []string{"keep: spare", "marker;"},
	},
	{
		name: "plugin overlay fragments",
		src:  "/dts-v1/;\n/plugin/;\n/ { shared; };\n&target { status = \"okay\"; };\n&{/soc/dev} { extra = <1>; };\n",
		want: []string{"/plugin/;", "&target {", "&{/soc/dev} {", "status = \"okay\""},
	},
}

func TestDTCSourceConformanceCorpus(t *testing.T) {
	for _, tc := range dtcSourceConformanceCorpus {
		tree, err := dts.Parse("corpus.dts", tc.src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", tc.name, err)
			continue
		}
		printed := tree.Print()
		for _, w := range tc.want {
			if !strings.Contains(printed, w) {
				t.Errorf("%s: print missing %q:\n%s", tc.name, w, printed)
			}
		}
		if err := CheckRoundTrip(tree); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
	// The delete-node case must actually delete.
	tree, err := dts.Parse("del.dts", dtcSourceConformanceCorpus[3].src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tree.Print(), "dead") {
		t.Error("/delete-node/ &victim; left the node in place")
	}
}

// TestDTCConformanceCorpus compiles every corpus expression and checks
// the emitted cells against dtc's values.
func TestDTCConformanceCorpus(t *testing.T) {
	for _, tc := range dtcConformanceCorpus {
		src := fmt.Sprintf("/dts-v1/;\n/ { p = <%s>; };\n", tc.expr)
		tree, err := dts.Parse("corpus.dts", src)
		if err != nil {
			t.Errorf("<%s>: parse failed: %v", tc.expr, err)
			continue
		}
		var got []uint32
		for _, p := range tree.Root.Properties {
			if p.Name != "p" {
				continue
			}
			for _, c := range p.Value.Chunks {
				for _, cell := range c.CellList {
					got = append(got, cell.Val)
				}
			}
		}
		if len(got) != len(tc.want) {
			t.Errorf("<%s>: got %d cells %v, want %v", tc.expr, len(got), got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("<%s>: cell %d = %#x, want %#x", tc.expr, i, got[i], tc.want[i])
			}
		}
	}
}
