package conform

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llhsc/internal/delta"
	"llhsc/internal/dtb"
	"llhsc/internal/dts"
	"llhsc/internal/dts/preproc"
	"llhsc/internal/featmodel"
)

// maxFuzzInput bounds inputs so a single mutated case cannot stall the
// fuzzing loop; the parser's own guards are exercised well below this.
const maxFuzzInput = 256 << 10

// coreForDeltaFuzz is the fixed core tree fuzzer-generated deltas are
// applied against.
const coreForDeltaFuzz = `/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	compatible = "conform,core";

	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000>;
	};

	uart0: uart@20000000 {
		compatible = "ns16550a";
		reg = <0x0 0x20000000 0x0 0x1000>;
	};
};
`

func addFileSeeds(f *testing.F, pattern string) {
	f.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", pattern))
	if err != nil {
		f.Fatal(err)
	}
	if len(files) == 0 {
		f.Fatalf("no seed corpus matches %s", pattern)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// FuzzParse asserts the error contract on arbitrary input: dts.Parse
// never panics and every rejection is a *dts.ParseError.
func FuzzParse(f *testing.F) {
	addFileSeeds(f, "seed_*.dts")
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(GenerateCase(seed).Source)
	}
	f.Add("$$$")
	f.Add(`/ { a = <(1/0)>; };`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > maxFuzzInput {
			t.Skip()
		}
		if _, err := ParseOracle("fuzz.dts", src); err != nil {
			t.Fatal(err)
		}
	})
}

// preprocFuzzOptions is the fixed environment FuzzPreproc (and the
// seed-corpus test) runs under: a small in-memory include universe
// (with a self-include to make cycles reachable) and tight budgets so
// mutated inputs that probe the guards fail fast instead of stalling
// the loop.
func preprocFuzzOptions() preproc.Options {
	return preproc.Options{
		IncludePaths: []string{"."},
		FS: preproc.MapFS{
			"inc.h":  "#define FROM_INC 1\n",
			"loop.h": "#include \"loop.h\"\n",
		},
		MaxDepth:  8,
		MaxBytes:  1 << 20,
		MaxExpand: 1 << 16,
	}
}

// FuzzPreproc asserts the preprocessor's error contract on arbitrary
// input: preproc.Source never panics and never hangs — macro recursion,
// unterminated conditionals, include cycles and expansion blow-ups must
// all come back as *dts.ParseError (the guards wrap dts.ErrTooDeep or
// dts.ErrSourceTooLarge). Accepted outputs must have a resolvable
// origin for every line.
func FuzzPreproc(f *testing.F) {
	addFileSeeds(f, "seed_pp_*.pp")
	f.Add("#define A(x) ((x) + 1)\nv = <A(A(2))>;\n")
	f.Add("#ifdef X\n#else\nok;\n#endif\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > maxFuzzInput {
			t.Skip()
		}
		res, err := preproc.Source("fuzz.dts", src, preprocFuzzOptions())
		if err != nil {
			var pe *dts.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("preproc rejection is not a *dts.ParseError: %T: %v", err, err)
			}
			return
		}
		// Text is newline-terminated when non-empty, so the "\n" count
		// is exactly the number of output lines.
		for i := 1; i <= strings.Count(res.Text, "\n"); i++ {
			if file, line := res.Origin(i); file == "" || line <= 0 {
				t.Fatalf("output line %d has no origin", i)
			}
		}
	})
}

// FuzzRoundTrip runs the differential oracles on every input the
// parser accepts: print/parse structural identity and, when phandle
// references resolve, the dtb fixed point.
func FuzzRoundTrip(f *testing.F) {
	addFileSeeds(f, "seed_*.dts")
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(GenerateCase(seed).Source)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > maxFuzzInput {
			t.Skip()
		}
		tree, err := ParseOracle("fuzz.dts", src)
		if err != nil {
			t.Fatal(err)
		}
		if tree == nil {
			return // legitimately rejected
		}
		if err := CheckRoundTrip(tree); err != nil {
			t.Fatal(err)
		}
		// Accepted sources may reference undefined labels (resolution
		// is late); only a successful encode owes us the fixed point.
		if blob, err := dtb.Encode(tree); err == nil {
			if err := CheckDTBFixpoint(blob); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// FuzzDTB feeds arbitrary blobs to the binary decoder: Decode must
// never panic, and any tree it accepts must reach an encode/decode
// fixed point after one normalizing encode.
func FuzzDTB(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		c := GenerateCase(seed)
		tree, err := dts.Parse("seed.dts", c.Source)
		if err != nil {
			f.Fatal(err)
		}
		blob, err := dtb.Encode(tree)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{0xd0, 0x0d, 0xfe, 0xed})
	f.Fuzz(func(t *testing.T, blob []byte) {
		if len(blob) > maxFuzzInput {
			t.Skip()
		}
		tree, err := dtb.Decode(blob)
		if err != nil {
			return // rejection is fine; panics are caught by the fuzzer
		}
		// The first encode normalizes (deduplicated properties, dropped
		// zero memreserves); from there the codec must be a fixed point.
		norm, err := dtb.Encode(tree)
		if err != nil {
			t.Fatalf("decoded tree does not re-encode: %v", err)
		}
		if err := CheckDTBFixpoint(norm); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzDelta parses arbitrary delta-module files and applies whatever
// parses against a fixed core: no panics anywhere, and successful
// applications must satisfy the delta-commute oracle.
func FuzzDelta(f *testing.F) {
	addFileSeeds(f, "seed_*.deltas")
	core, err := dts.Parse("core.dts", coreForDeltaFuzz)
	if err != nil {
		f.Fatal(err)
	}
	for seed := int64(1); seed <= 8; seed++ {
		g := NewGenerator(seed)
		tree, err := dts.Parse("seed.dts", g.Source())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(g.DeltaSource(tree))
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > maxFuzzInput {
			t.Skip()
		}
		set, err := delta.Parse("fuzz.deltas", src)
		if err != nil {
			return
		}
		for _, cfg := range []featmodel.Configuration{
			{"fa": true, "fb": true, "fc": true},
			{"fa": true, "fb": false, "fc": true},
			{},
		} {
			product, _, err := set.Apply(core, cfg)
			if err != nil {
				continue // typed apply/order errors are legitimate
			}
			printed := product.Print()
			re, err := dts.Parse("product.dts", printed)
			if err != nil {
				t.Fatalf("delta product does not reparse: %v\nprinted:\n%s", err, printed)
			}
			if err := TreesStructurallyEqual(product, re); err != nil {
				t.Fatalf("delta product round trip: %v\nprinted:\n%s", err, printed)
			}
		}
	})
}
