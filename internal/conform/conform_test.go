package conform

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// oracleCases is the deterministic per-run budget: every `go test`
// executes the full oracle suite over this many generated trees, so CI
// exercises the differential oracles even without a fuzzing budget.
const oracleCases = 250

// TestGeneratedOracles is the deterministic conformance sweep: for
// each seed, generate a source + delta case and run every oracle.
func TestGeneratedOracles(t *testing.T) {
	for seed := int64(1); seed <= oracleCases; seed++ {
		if err := GenerateCase(seed).Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGeneratorDeterministic: same seed, same bytes — a failing seed
// printed by TestGeneratedOracles must reproduce exactly.
func TestGeneratorDeterministic(t *testing.T) {
	a, b := GenerateCase(42), GenerateCase(42)
	if a.Source != b.Source || a.Deltas != b.Deltas {
		t.Fatal("GenerateCase(42) is not deterministic")
	}
	c := GenerateCase(43)
	if a.Source == c.Source {
		t.Fatal("different seeds produced identical sources")
	}
}

// TestGeneratorCoversGrammar: over a modest seed range the generator
// must exercise every surface construct the oracles are meant to
// protect — otherwise fuzzing regressions could go unnoticed.
func TestGeneratorCoversGrammar(t *testing.T) {
	var all strings.Builder
	for seed := int64(1); seed <= 100; seed++ {
		all.WriteString(GenerateCase(seed).Source)
	}
	src := all.String()
	for _, construct := range []string{
		"/memreserve/", "/delete-node/", "@", ": ", "&", "&{/",
		"<<", "?", "==", "&&", `\x`, `\\`, "[", `"`, " % ", "'",
	} {
		if !strings.Contains(src, construct) {
			t.Errorf("100 generated sources never use %q", construct)
		}
	}
	if !strings.Contains(src, "0x") {
		t.Error("no hex literals generated")
	}
}

// TestSeedCorpusFiles: every checked-in fuzz seed must parse and pass
// the oracles, so corpus rot is caught by plain `go test`.
func TestSeedCorpusFiles(t *testing.T) {
	dtsFiles, err := filepath.Glob("testdata/seed_*.dts")
	if err != nil || len(dtsFiles) == 0 {
		t.Fatalf("no seed corpus files: %v", err)
	}
	for _, f := range dtsFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := dts.Parse(filepath.Base(f), string(data))
		if err != nil {
			t.Errorf("%s does not parse: %v", f, err)
			continue
		}
		if err := CheckRoundTrip(tree); err != nil {
			t.Errorf("%s: %v", f, err)
		}
		if err := CheckDTB(tree); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
	deltaFiles, err := filepath.Glob("testdata/seed_*.deltas")
	if err != nil || len(deltaFiles) == 0 {
		t.Fatalf("no delta seed corpus files: %v", err)
	}
	core, err := dts.Parse("core.dts", coreForDeltaFuzz)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range deltaFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		set, err := delta.Parse(filepath.Base(f), string(data))
		if err != nil {
			t.Errorf("%s does not parse: %v", f, err)
			continue
		}
		cfg := featmodel.Configuration{"fa": true, "fb": false, "fc": true}
		if err := CheckDeltaCommute(core, set, cfg); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

// TestParseOracleContract: ParseOracle must accept valid input, pass
// through legitimate rejections silently, and flag nothing on the
// seed corpus.
func TestParseOracleContract(t *testing.T) {
	tree, err := ParseOracle("ok.dts", "/dts-v1/;\n/ { x = <1>; };\n")
	if err != nil || tree == nil {
		t.Fatalf("valid input: tree=%v err=%v", tree, err)
	}
	tree, err = ParseOracle("bad.dts", "$$$")
	if err != nil || tree != nil {
		t.Fatalf("invalid input must reject cleanly: tree=%v err=%v", tree, err)
	}
}
