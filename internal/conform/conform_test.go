package conform

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/dts/preproc"
	"llhsc/internal/featmodel"
)

// oracleCases is the deterministic per-run budget: every `go test`
// executes the full oracle suite over this many generated trees, so CI
// exercises the differential oracles even without a fuzzing budget.
const oracleCases = 250

// TestGeneratedOracles is the deterministic conformance sweep: for
// each seed, generate a source + delta case and run every oracle.
func TestGeneratedOracles(t *testing.T) {
	for seed := int64(1); seed <= oracleCases; seed++ {
		if err := GenerateCase(seed).Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGeneratorDeterministic: same seed, same bytes — a failing seed
// printed by TestGeneratedOracles must reproduce exactly.
func TestGeneratorDeterministic(t *testing.T) {
	a, b := GenerateCase(42), GenerateCase(42)
	if a.Source != b.Source || a.Deltas != b.Deltas {
		t.Fatal("GenerateCase(42) is not deterministic")
	}
	c := GenerateCase(43)
	if a.Source == c.Source {
		t.Fatal("different seeds produced identical sources")
	}
}

// TestGeneratorCoversGrammar: over a modest seed range the generator
// must exercise every surface construct the oracles are meant to
// protect — otherwise fuzzing regressions could go unnoticed.
func TestGeneratorCoversGrammar(t *testing.T) {
	var all strings.Builder
	for seed := int64(1); seed <= 100; seed++ {
		all.WriteString(GenerateCase(seed).Source)
	}
	src := all.String()
	for _, construct := range []string{
		"/memreserve/", "/delete-node/", "@", ": ", "&", "&{/",
		"<<", "?", "==", "&&", `\x`, `\\`, "[", `"`, " % ", "'",
		"/bits/ ", "fwd-prop",
	} {
		if !strings.Contains(src, construct) {
			t.Errorf("100 generated sources never use %q", construct)
		}
	}
	if !strings.Contains(src, "0x") {
		t.Error("no hex literals generated")
	}
}

// TestGeneratedOverlayOracles: for each seed, generate a base tree and
// a /plugin/ overlay targeting it, then check that (a) the overlay
// itself round-trips through the printer, (b) the applied result
// round-trips, and (c) deriving the overlay as a delta module
// (delta.FromOverlay) and applying it with the feature on reproduces
// dts.ApplyOverlay exactly, while the feature off reproduces the base.
func TestGeneratedOverlayOracles(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		g := NewGenerator(seed)
		base, err := dts.Parse("base.dts", g.Source())
		if err != nil {
			t.Fatalf("seed %d: base does not parse: %v", seed, err)
		}
		ovSrc := g.OverlaySource(base)
		ov, err := dts.Parse("ov.dtso", ovSrc)
		if err != nil {
			t.Fatalf("seed %d: overlay does not parse: %v\n%s", seed, err, ovSrc)
		}
		if !ov.Plugin {
			t.Fatalf("seed %d: overlay not marked /plugin/", seed)
		}
		if err := CheckRoundTrip(ov); err != nil {
			t.Fatalf("seed %d: overlay round trip: %v\n%s", seed, err, ovSrc)
		}
		merged, err := dts.ApplyOverlay(base, ov)
		if err != nil {
			t.Fatalf("seed %d: apply: %v\n%s", seed, err, ovSrc)
		}
		if err := CheckRoundTrip(merged); err != nil {
			t.Fatalf("seed %d: merged round trip: %v", seed, err)
		}
		set, err := delta.FromOverlay("gen-overlay", ov, "fa")
		if err != nil {
			t.Fatalf("seed %d: FromOverlay: %v", seed, err)
		}
		on, _, err := set.Apply(base, featmodel.Configuration{"fa": true})
		if err != nil {
			t.Fatalf("seed %d: delta apply: %v", seed, err)
		}
		if on.Print() != merged.Print() {
			t.Fatalf("seed %d: delta-derived product differs from ApplyOverlay\n%s", seed, ovSrc)
		}
		off, _, err := set.Apply(base, featmodel.Configuration{})
		if err != nil {
			t.Fatalf("seed %d: delta apply (off): %v", seed, err)
		}
		if off.Print() != base.Print() {
			t.Fatalf("seed %d: overlay-off product differs from base", seed)
		}
	}
}

// TestSeedCorpusFiles: every checked-in fuzz seed must parse and pass
// the oracles, so corpus rot is caught by plain `go test`.
func TestSeedCorpusFiles(t *testing.T) {
	dtsFiles, err := filepath.Glob("testdata/seed_*.dts")
	if err != nil || len(dtsFiles) == 0 {
		t.Fatalf("no seed corpus files: %v", err)
	}
	for _, f := range dtsFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := dts.Parse(filepath.Base(f), string(data))
		if err != nil {
			t.Errorf("%s does not parse: %v", f, err)
			continue
		}
		if err := CheckRoundTrip(tree); err != nil {
			t.Errorf("%s: %v", f, err)
		}
		if err := CheckDTB(tree); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
	deltaFiles, err := filepath.Glob("testdata/seed_*.deltas")
	if err != nil || len(deltaFiles) == 0 {
		t.Fatalf("no delta seed corpus files: %v", err)
	}
	core, err := dts.Parse("core.dts", coreForDeltaFuzz)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range deltaFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		set, err := delta.Parse(filepath.Base(f), string(data))
		if err != nil {
			t.Errorf("%s does not parse: %v", f, err)
			continue
		}
		cfg := featmodel.Configuration{"fa": true, "fb": false, "fc": true}
		if err := CheckDeltaCommute(core, set, cfg); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

// TestPreprocSeedCorpusFiles pins the behavior of each checked-in
// preprocessor fuzz seed, so corpus rot (or a guard regression) is
// caught by plain `go test`: the pathological seeds must fail with a
// *dts.ParseError, the well-formed ones must preprocess cleanly.
func TestPreprocSeedCorpusFiles(t *testing.T) {
	wantErr := map[string]bool{
		"seed_pp_unterminated.pp": true, // unbalanced #ifdef/#ifndef
		"seed_pp_cycle.pp":        true, // loop.h includes itself
	}
	files, err := filepath.Glob("testdata/seed_pp_*.pp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no preproc seed corpus files: %v", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		_, perr := preproc.Source(filepath.Base(f), string(data), preprocFuzzOptions())
		if wantErr[filepath.Base(f)] {
			var pe *dts.ParseError
			if perr == nil {
				t.Errorf("%s: expected a preprocessing error", f)
			} else if !errors.As(perr, &pe) {
				t.Errorf("%s: error is not a *dts.ParseError: %T", f, perr)
			}
			continue
		}
		if perr != nil {
			t.Errorf("%s: %v", f, perr)
		}
	}
}

// TestParseOracleContract: ParseOracle must accept valid input, pass
// through legitimate rejections silently, and flag nothing on the
// seed corpus.
func TestParseOracleContract(t *testing.T) {
	tree, err := ParseOracle("ok.dts", "/dts-v1/;\n/ { x = <1>; };\n")
	if err != nil || tree == nil {
		t.Fatalf("valid input: tree=%v err=%v", tree, err)
	}
	tree, err = ParseOracle("bad.dts", "$$$")
	if err != nil || tree != nil {
		t.Fatalf("invalid input must reject cleanly: tree=%v err=%v", tree, err)
	}
}
