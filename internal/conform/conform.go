// Package conform is the correctness-tooling layer for the DTS front
// end (DESIGN.md §11): a grammar-aware, seeded generator of
// structurally valid DeviceTree sources and delta modules, plus
// differential round-trip oracles over the parser, printer, dtb codec
// and delta engine. The oracles are:
//
//  1. print/parse: parse(Print(parse(s))) is structurally identical to
//     parse(s), and Print is idempotent (canonical fixed point);
//  2. dtb: Encode(Decode(Encode(t))) == Encode(t) bit-for-bit —
//     semantic equality modulo label and expression erasure, which the
//     binary format cannot represent;
//  3. delta-commute: applying the active deltas and re-parsing the
//     printed product reproduces the product tree;
//  4. error contract: every rejected input fails with *dts.ParseError,
//     never a panic or an untyped error.
//
// Native go-fuzz targets (FuzzParse, FuzzRoundTrip, FuzzDTB,
// FuzzDelta) drive the oracles with coverage-guided mutation of seed
// corpora under testdata/, and a deterministic mode (TestGeneratedOracles)
// runs hundreds of generated cases on every plain `go test`, so CI
// executes the oracles even without a fuzzing budget.
package conform

import (
	"fmt"

	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
)

// Case is one generated conformance case: a DTS compilation unit, a
// delta-module file targeting it, and a feature configuration.
type Case struct {
	Seed   int64
	Source string
	Deltas string
	Config featmodel.Configuration
}

// GenerateCase builds the deterministic case for a seed.
func GenerateCase(seed int64) Case {
	g := NewGenerator(seed)
	src := g.Source()
	tree, err := dts.Parse("gen.dts", src)
	if err != nil {
		// Generator contract: every output parses. Run() re-parses and
		// reports this properly; keep the case intact for debugging.
		return Case{Seed: seed, Source: src}
	}
	return Case{
		Seed:   seed,
		Source: src,
		Deltas: g.DeltaSource(tree),
		Config: g.Config(),
	}
}

// Run executes every oracle against the case and returns the first
// violation, tagged with the seed so failures reproduce with
// GenerateCase(seed).
func (c Case) Run() error {
	fail := func(stage string, err error) error {
		return fmt.Errorf("seed %d, %s: %w\nsource:\n%s", c.Seed, stage, err, c.Source)
	}
	tree, err := dts.Parse("gen.dts", c.Source)
	if err != nil {
		return fail("parse of generated source", err)
	}
	if err := CheckRoundTrip(tree); err != nil {
		return fail("round trip", err)
	}
	if err := CheckDTB(tree); err != nil {
		return fail("dtb", err)
	}
	if c.Deltas == "" {
		return nil
	}
	set, err := delta.Parse("gen.deltas", c.Deltas)
	if err != nil {
		return fmt.Errorf("seed %d, parse of generated deltas: %w\ndeltas:\n%s", c.Seed, err, c.Deltas)
	}
	if err := CheckDeltaCommute(tree, set, c.Config); err != nil {
		return fmt.Errorf("seed %d, delta commute: %w\ndeltas:\n%s", c.Seed, err, c.Deltas)
	}
	return nil
}
