// Hypervisor: the paper's running example end to end — the CustomSBC
// core module (Listings 1–2), the delta product line (Listing 4), the
// Fig. 1a feature model, the Fig. 1b/1c VM products — checked by all
// three constraint families and turned into the Bao configuration files
// of Listings 3 and 6.
//
// Run with: go run ./examples/hypervisor
package main

import (
	"fmt"
	"log"
	"strings"

	"llhsc/internal/core"
	"llhsc/internal/featmodel"
	"llhsc/internal/runningexample"
	"llhsc/internal/schema"
)

func main() {
	tree, err := runningexample.Tree()
	if err != nil {
		log.Fatal(err)
	}
	deltas, err := runningexample.Deltas()
	if err != nil {
		log.Fatal(err)
	}
	model, err := runningexample.Model()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("feature model (Fig. 1a):")
	fmt.Println(indent(model.Format(), "  "))
	analyzer := featmodel.NewAnalyzer(model)
	n, _ := analyzer.CountProducts(0)
	fmt.Printf("valid products: %d (the paper reports %d)\n\n",
		n, runningexample.ProductCount)

	pipeline := &core.Pipeline{
		Core:    tree,
		Deltas:  deltas,
		Model:   model,
		Schemas: schema.StandardSet(),
		VMConfigs: []featmodel.Configuration{
			runningexample.VM1Config(),
			runningexample.VM2Config(),
		},
		VMNames: []string{"vm1", "vm2"},
	}
	report, err := pipeline.Run()
	if err != nil {
		log.Fatal(err)
	}
	if !report.OK() {
		for _, v := range report.AllViolations() {
			fmt.Println("violation:", v)
		}
		log.Fatal("running example failed its checks")
	}

	for _, vm := range report.VMs {
		fmt.Printf("%s (deltas %v):\n%s\n", vm.Name, vm.Trace, indent(vm.DTS, "  "))
	}
	fmt.Printf("platform DTS (union product):\n%s\n", indent(report.Platform.DTS, "  "))
	fmt.Printf("platform config C (Listing 3):\n%s\n", indent(report.PlatformC, "  "))
	fmt.Printf("VM config C (Listing 6):\n%s\n", indent(report.ConfigC, "  "))
	fmt.Printf("QEMU equivalent:\n  %s\n", strings.Join(report.QEMUArgs, " "))
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
