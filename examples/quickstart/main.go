// Quickstart: parse a DeviceTree source, validate it structurally
// (the dt-schema-equivalent baseline) and semantically (SMT-backed
// overlap checking), and print the verdicts.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"llhsc/internal/constraints"
	"llhsc/internal/dts"
	"llhsc/internal/schema"
)

const boardDTS = `
/dts-v1/;

/ {
	#address-cells = <1>;
	#size-cells = <1>;
	compatible = "acme,board";

	memory@80000000 {
		device_type = "memory";
		reg = <0x80000000 0x40000000>;
	};

	cpus {
		#address-cells = <1>;
		#size-cells = <0>;
		cpu@0 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			enable-method = "psci";
			reg = <0x0>;
		};
	};

	uart@10000000 {
		compatible = "ns16550a";
		reg = <0x10000000 0x1000>;
		interrupts = <5>;
	};

	// BUG: this timer's window collides with the uart above.
	timer@10000800 {
		reg = <0x10000800 0x1000>;
		interrupts = <6>;
	};
};
`

func main() {
	tree, err := dts.Parse("board.dts", boardDTS)
	if err != nil {
		log.Fatalf("parse: %v", err)
	}
	fmt.Println("parsed", "board.dts:")
	tree.Root.Walk(func(path string, n *dts.Node) bool {
		if path != "/" {
			fmt.Println("  node", path)
		}
		return true
	})

	fmt.Println("\n--- structural validation (dt-schema baseline) ---")
	violations := schema.StandardSet().Validate(tree)
	if len(violations) == 0 {
		fmt.Println("clean (the baseline cannot see the overlap)")
	}
	for _, v := range violations {
		fmt.Println(" ", v)
	}

	fmt.Println("\n--- semantic validation (llhsc, SMT-backed) ---")
	collisions, semViolations := constraints.NewSemanticChecker().Check(tree)
	for _, c := range collisions {
		fmt.Println("  COLLISION:", c)
	}
	for _, v := range semViolations {
		fmt.Println(" ", v)
	}
	if len(collisions) == 0 {
		fmt.Println("clean")
	}

	fmt.Println("\n--- interrupt uniqueness (extension) ---")
	irqs := constraints.InterruptChecker{}.Check(tree)
	if len(irqs) == 0 {
		fmt.Println("clean")
	}
	for _, v := range irqs {
		fmt.Println(" ", v)
	}
}
