// Addrclash: the two failure stories that motivate the paper.
//
// Scenario 1 (Section I-A): a serial port's base address is moved onto
// the second memory bank. dtc parses it, dt-schema validates it — only
// the SMT-backed semantic checker sees the clash and produces a
// counterexample address.
//
// Scenario 2 (Section IV-C): delta d3 switches the tree to 32-bit
// addressing but the memory reg keeps its 64-bit layout. dt-schema
// accepts any multiple of #address-cells+#size-cells, so the re-read
// reg silently becomes FOUR banks — two based at 0x0 — and only the
// semantic checker reports the collision at 0x0.
//
// Run with: go run ./examples/addrclash
package main

import (
	"fmt"
	"log"

	"llhsc/internal/addr"
	"llhsc/internal/constraints"
	"llhsc/internal/dts"
	"llhsc/internal/schema"
)

const clashDTS = `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;

	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};

	/* the user mistyped the base address: it now sits inside bank 2 */
	uart@60000000 {
		compatible = "ns16550a";
		reg = <0x0 0x60000000 0x0 0x1000>;
	};
};
`

const truncatedDTS = `
/dts-v1/;
/ {
	/* delta d3 set 32-bit cells ... */
	#address-cells = <1>;
	#size-cells = <1>;

	/* ... but delta d4 (the reg conversion) was forgotten */
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};
};
`

func main() {
	fmt.Println("=== Scenario 1: address clash (Section I-A) ===")
	runScenario(clashDTS)

	fmt.Println("\n=== Scenario 2: 64->32-bit truncation (Section IV-C) ===")
	tree := runScenario(truncatedDTS)

	regions, err := addr.CollectRegions(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memory banks after 32-bit reinterpretation: %d (originally written as 2)\n",
		len(regions))
	for _, r := range regions {
		fmt.Printf("  bank %d: base 0x%x size 0x%x\n", r.Index, r.Base, r.Size)
	}
}

func runScenario(src string) *dts.Tree {
	tree, err := dts.Parse("scenario.dts", src)
	if err != nil {
		log.Fatalf("dtc would reject this, but it parses: %v", err)
	}
	fmt.Println("dtc (syntax):            accepts")

	baseline := schema.StandardSet().Validate(tree)
	if len(baseline) == 0 {
		fmt.Println("dt-schema (structural):  accepts  <- the fault is invisible")
	} else {
		for _, v := range baseline {
			fmt.Println("dt-schema:", v)
		}
	}

	collisions, _ := constraints.NewSemanticChecker().Check(tree)
	if len(collisions) == 0 {
		fmt.Println("llhsc (semantic):        accepts")
	}
	for _, c := range collisions {
		fmt.Printf("llhsc (semantic):        REJECTS: %s\n", c)
	}
	return tree
}
