// Productline: build a delta-oriented product line for a custom board
// from scratch — infer a feature model from the core DTS, extend it
// with a virtual watchdog feature, write deltas, enumerate every valid
// product, and run the full checker over each one.
//
// Run with: go run ./examples/productline
package main

import (
	"fmt"
	"log"
	"strings"

	"llhsc/internal/constraints"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/schema"
)

const coreDTS = `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	compatible = "acme,iot-gateway";

	memory@80000000 {
		device_type = "memory";
		reg = <0x80000000 0x10000000>;
	};

	cpus {
		#address-cells = <1>;
		#size-cells = <0>;
		cpu@0 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			enable-method = "psci";
			reg = <0x0>;
		};
		cpu@1 {
			compatible = "arm,cortex-a53";
			device_type = "cpu";
			enable-method = "psci";
			reg = <0x1>;
		};
	};

	con0: uart@10000000 {
		compatible = "ns16550a";
		reg = <0x10000000 0x1000>;
	};

	con1: uart@10010000 {
		compatible = "ns16550a";
		reg = <0x10010000 0x1000>;
	};
};
`

const deltasSrc = `
// the watchdog is an optional add-on device
delta add_watchdog when watchdog {
    adds binding / {
        watchdog@20000000 {
            compatible = "acme,wdt";
            reg = <0x20000000 0x100>;
        };
    }
}

// low-cost variant drops the second console
delta drop_con1 when !con1 {
    removes node uart@10010000;
}

delta drop_con0 when !con0 {
    removes node uart@10000000;
}

delta drop_cpu1 when !cpu@1 {
    removes node cpu@1;
}

delta drop_cpu0 when !cpu@0 {
    removes node cpu@0;
}
`

func main() {
	core, err := dts.Parse("gateway.dts", coreDTS)
	if err != nil {
		log.Fatal(err)
	}

	// 1. infer the feature model from the board description
	inferred, err := featmodel.InferFromDTS(core, featmodel.InferOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// 2. extend it: an optional watchdog that requires both CPUs alive
	model, err := inferred.AddVirtualGroup("addons", featmodel.GroupOr,
		[]string{"watchdog"},
		featmodel.MustParseExpr("watchdog -> cpu@0"),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred feature model:")
	fmt.Print(indent(model.Format()))

	deltas, err := delta.Parse("gateway.deltas", deltasSrc)
	if err != nil {
		log.Fatal(err)
	}

	// 3. enumerate all valid products
	analyzer := featmodel.NewAnalyzer(model)
	products, complete := analyzer.EnumerateProducts(0)
	fmt.Printf("\n%d valid products (complete=%v)\n", len(products), complete)

	// 4. derive and check every product
	syntactic := constraints.NewSyntacticChecker(schema.StandardSet())
	semantic := constraints.NewSemanticChecker()
	clean := 0
	for i, p := range products {
		cfg := featmodel.ConfigOf(p...)
		product, trace, err := deltas.Apply(core, cfg)
		if err != nil {
			log.Fatalf("product %d (%v): %v", i, p, err)
		}
		vs := syntactic.Check(product)
		_, sem := semantic.Check(product)
		vs = append(vs, sem...)
		status := "ok"
		if len(vs) > 0 {
			status = fmt.Sprintf("%d violation(s)", len(vs))
		} else {
			clean++
		}
		fmt.Printf("  product %2d: %-55s deltas=%v %s\n",
			i+1, strings.Join(selectConcrete(p), ","), trace, status)
	}
	fmt.Printf("\n%d/%d products check out clean\n", clean, len(products))
}

// selectConcrete drops group features for compact printing.
func selectConcrete(names []string) []string {
	var out []string
	for _, n := range names {
		switch n {
		case "acme,iot-gateway", "cpus", "uarts", "addons":
			continue
		}
		out = append(out, n)
	}
	return out
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
