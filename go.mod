module llhsc

go 1.22
