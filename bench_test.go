// Package llhsc_test benchmarks every experiment of DESIGN.md §4 — one
// Benchmark per table/figure (E1–E7 are the paper's artifacts, E8–E12
// the scaling extensions) — plus the ablation benchmarks of DESIGN.md
// §5 (hash-consing, at-most-one encodings, incremental vs fresh
// solving). Run with:
//
//	go test -bench=. -benchmem
package llhsc_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"llhsc/internal/addr"
	"llhsc/internal/bench"
	"llhsc/internal/constraints"
	"llhsc/internal/core"
	"llhsc/internal/delta"
	"llhsc/internal/dtb"
	"llhsc/internal/dts"
	"llhsc/internal/featmodel"
	"llhsc/internal/logic"
	"llhsc/internal/runningexample"
	"llhsc/internal/sat"
	"llhsc/internal/schema"
	"llhsc/internal/smt"
)

// ---- E1: parse the running example ----

func BenchmarkE1ParseRunningExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := runningexample.Tree(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E2: feature-model inference and product counting ----

func BenchmarkE2FeatureModel(b *testing.B) {
	tree, err := runningexample.Tree()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inferred, err := featmodel.InferFromDTS(tree, featmodel.InferOptions{RootName: "CustomSBC"})
		if err != nil {
			b.Fatal(err)
		}
		model, err := inferred.AddVirtualGroup("vEthernet", featmodel.GroupXor,
			[]string{"veth0", "veth1"},
			featmodel.MustParseExpr("veth0 -> cpu@0"),
			featmodel.MustParseExpr("veth1 -> cpu@1"))
		if err != nil {
			b.Fatal(err)
		}
		n, _ := featmodel.NewAnalyzer(model).CountProducts(0)
		if n != runningexample.ProductCount {
			b.Fatalf("products = %d, want %d", n, runningexample.ProductCount)
		}
	}
}

// ---- E3: product validation and partitioning ----

func BenchmarkE3Products(b *testing.B) {
	model, err := runningexample.Model()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := featmodel.NewAnalyzer(model)
		if !a.IsValid(runningexample.VM1Config()) || !a.IsValid(runningexample.VM2Config()) {
			b.Fatal("paper products invalid")
		}
		mm, _ := featmodel.NewMultiModel(model, 2)
		ma, err := featmodel.NewMultiAnalyzer(mm)
		if err != nil {
			b.Fatal(err)
		}
		if ma.IsVoid() {
			b.Fatal("2-VM partitioning void")
		}
	}
}

// ---- E4: delta ordering and application ----

func BenchmarkE4Deltas(b *testing.B) {
	core, err := runningexample.Tree()
	if err != nil {
		b.Fatal(err)
	}
	set, err := runningexample.Deltas()
	if err != nil {
		b.Fatal(err)
	}
	cfg := runningexample.VM1Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := set.Apply(core, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E5: the Section I-A address clash ----

func BenchmarkE5AddrClash(b *testing.B) {
	src := `
/dts-v1/;
/ {
	#address-cells = <2>;
	#size-cells = <2>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x0 0x40000000 0x0 0x20000000
		       0x0 0x60000000 0x0 0x20000000>;
	};
	uart@60000000 { compatible = "ns16550a"; reg = <0x0 0x60000000 0x0 0x1000>; };
};
`
	tree, err := dts.Parse("clash.dts", src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		collisions, _ := constraints.NewSemanticChecker().Check(tree)
		if len(collisions) != 1 {
			b.Fatalf("collisions = %d", len(collisions))
		}
	}
}

// ---- E6: the truncation scenario ----

func BenchmarkE6Truncation(b *testing.B) {
	core, err := runningexample.Tree()
	if err != nil {
		b.Fatal(err)
	}
	set, err := runningexample.Deltas()
	if err != nil {
		b.Fatal(err)
	}
	var kept []*delta.Delta
	for _, d := range set.Deltas {
		if d.Name != "d4" {
			kept = append(kept, d)
		}
	}
	smaller, err := delta.NewSet(kept)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		product, _, err := smaller.Apply(core, runningexample.VM1Config())
		if err != nil {
			b.Fatal(err)
		}
		collisions, _ := constraints.NewSemanticChecker().Check(product)
		if len(collisions) == 0 {
			b.Fatal("collision at 0x0 not found")
		}
	}
}

// ---- E7: the full pipeline with artifact generation ----

func BenchmarkE7BaoGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := bench.RunningExamplePipeline()
		if err != nil {
			b.Fatal(err)
		}
		if !report.OK() || report.ConfigC == "" {
			b.Fatal("pipeline failed")
		}
	}
}

// ---- E8: overlap-check scaling ----

func BenchmarkE8OverlapScaling(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		regions := bench.SyntheticRegions(n, true)
		b.Run(fmt.Sprintf("perpair/n=%d", n), func(b *testing.B) {
			sc := constraints.NewSemanticChecker()
			for i := 0; i < b.N; i++ {
				if got := sc.FindCollisions(regions, 32); len(got) == 0 {
					b.Fatal("planted collision missed")
				}
			}
		})
		b.Run(fmt.Sprintf("onequery/n=%d", n), func(b *testing.B) {
			sc := constraints.NewSemanticChecker()
			for i := 0; i < b.N; i++ {
				if _, ok := sc.AnyCollision(regions, 32); !ok {
					b.Fatal("planted collision missed")
				}
			}
		})
	}
}

// ---- E9: feature-model analysis scaling ----

func BenchmarkE9FMScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		model := bench.SyntheticFeatureModel(n, 42)
		b.Run(fmt.Sprintf("void/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				featmodel.NewAnalyzer(model).IsVoid()
			}
		})
		b.Run(fmt.Sprintf("dead/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				featmodel.NewAnalyzer(model).DeadFeatures()
			}
		})
	}
}

// ---- E10: the detection matrix ----

func BenchmarkE10DetectionMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		matrix, err := bench.DetectionMatrix()
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range matrix {
			if !d.LLHSC {
				b.Fatalf("llhsc missed %v", d.Fault)
			}
		}
	}
}

// ---- E11: delta-chain scaling ----

func BenchmarkE11DeltaScaling(b *testing.B) {
	for _, k := range []int{16, 64} {
		core, set, err := bench.SyntheticDeltaChain(k)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("apply/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := set.Apply(core, featmodel.ConfigOf()); err != nil {
					b.Fatal(err)
				}
			}
		})
		product, _, err := set.Apply(core, featmodel.ConfigOf())
		if err != nil {
			b.Fatal(err)
		}
		regions, err := addr.CollectRegions(product)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("check/k=%d", k), func(b *testing.B) {
			sc := constraints.NewSemanticChecker()
			for i := 0; i < b.N; i++ {
				sc.FindCollisions(regions, 32)
			}
		})
	}
}

// ---- ablations (DESIGN.md §5) ----

// BenchmarkAblationHashConsing compares bit-blasting with and without
// structural sharing of terms.
func BenchmarkAblationHashConsing(b *testing.B) {
	build := func(ctx *smt.Context, solver *smt.Solver) {
		x := ctx.BVVar("x", 32)
		sum := ctx.BVConst(32, 0)
		for i := 0; i < 16; i++ {
			// the same subterm appears repeatedly: consing shares it
			sum = ctx.Add(sum, ctx.Add(x, ctx.BVConst(32, uint64(i))))
		}
		solver.Assert(ctx.Eq(sum, ctx.BVConst(32, 0x1234)))
		solver.Check()
	}
	b.Run("consing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := smt.NewContext()
			build(ctx, smt.NewSolver(ctx))
		}
	})
	b.Run("noconsing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := smt.NewContext(smt.WithoutHashConsing())
			build(ctx, smt.NewSolver(ctx))
		}
	})
}

// BenchmarkAblationAMOEncodings compares the pairwise and sequential
// at-most-one encodings on large XOR groups.
func BenchmarkAblationAMOEncodings(b *testing.B) {
	const n = 200
	lits := make([]logic.Lit, n)
	for i := range lits {
		lits[i] = logic.Lit(i + 1)
	}
	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cnf := &logic.CNF{NumVars: n}
			logic.AtMostOnePairwise(lits, cnf)
			s := sat.New()
			s.AddCNF(cnf)
			s.AddClause(lits[0])
			if s.Solve() != sat.Sat {
				b.Fatal("unexpected unsat")
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool := logic.NewPool()
			pool.Reserve(logic.Var(n))
			cnf := &logic.CNF{NumVars: n}
			logic.AtMostOneSequential(lits, pool, cnf)
			s := sat.New()
			s.AddCNF(cnf)
			s.AddClause(lits[0])
			if s.Solve() != sat.Sat {
				b.Fatal("unexpected unsat")
			}
		}
	})
}

// BenchmarkAblationIncrementalVsFresh measures solver reuse across
// Push/Pop scopes against constructing a fresh solver per query.
func BenchmarkAblationIncrementalVsFresh(b *testing.B) {
	regions := bench.SyntheticRegions(24, true)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := constraints.NewSemanticChecker()
			sc.FindCollisions(regions, 32) // one solver, Push/Pop per pair
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// a new checker (and solver) per pair
			for j := 0; j < len(regions); j++ {
				for k := j + 1; k < len(regions); k++ {
					sc := constraints.NewSemanticChecker()
					sc.FindCollisions([]addr.Region{regions[j], regions[k]}, 32)
				}
			}
		}
	})
}

// ---- substrate micro-benchmarks ----

func BenchmarkSATPigeonhole(b *testing.B) {
	const n = 6
	for i := 0; i < b.N; i++ {
		s := sat.New()
		v := func(p, h int) logic.Lit { return logic.Lit(p*n + h + 1) }
		for p := 0; p <= n; p++ {
			cl := make([]logic.Lit, n)
			for h := 0; h < n; h++ {
				cl[h] = v(p, h)
			}
			s.AddClause(cl...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(-v(p1, h), -v(p2, h))
				}
			}
		}
		if s.Solve() != sat.Unsat {
			b.Fatal("PHP should be unsat")
		}
	}
}

func BenchmarkSMTBitVectorAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := smt.NewContext()
		solver := smt.NewSolver(ctx)
		x := ctx.BVVar("x", 32)
		solver.Assert(ctx.Eq(ctx.Add(x, ctx.BVConst(32, 12345)), ctx.BVConst(32, 99999)))
		if solver.Check() != sat.Sat {
			b.Fatal("unsat")
		}
		if solver.BVValue(x) != 99999-12345 {
			b.Fatal("wrong model")
		}
	}
}

func BenchmarkDTSParse(b *testing.B) {
	tree := bench.SyntheticDTS(16, 64)
	src := tree.Print()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dts.Parse("synthetic.dts", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDTBEncodeDecode(b *testing.B) {
	tree := bench.SyntheticDTS(16, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := dtb.Encode(tree)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dtb.Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchemaValidate(b *testing.B) {
	tree := bench.SyntheticDTS(16, 64)
	set := schema.StandardSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := set.Validate(tree); len(vs) != 0 {
			b.Fatal("unexpected violations")
		}
	}
}

func BenchmarkSyntacticCheckerSMT(b *testing.B) {
	tree := bench.SyntheticDTS(4, 16)
	checker := constraints.NewSyntacticChecker(schema.StandardSet())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := checker.Check(tree); len(vs) != 0 {
			b.Fatal("unexpected violations")
		}
	}
}

// Verify the experiment harness stays runnable from the bench binary.
func BenchmarkExperimentE5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.RunE5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E12: full-pipeline scaling ----

func BenchmarkE12PipelineScaling(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("vms=%d", k), func(b *testing.B) {
			pipeline, err := bench.SyntheticProductLine(k, k, k)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := pipeline.Run()
				if err != nil {
					b.Fatal(err)
				}
				if !report.OK() {
					b.Fatal("unexpected violations")
				}
			}
		})
	}
}

// ---- E13: parallel-pipeline speedup ----

// BenchmarkE13ParallelSpeedup runs the heavy 8-VM product line at each
// worker count. Speedup over workers=1 needs real cores: on a 1-CPU
// machine the sub-benchmarks coincide (modulo pool overhead), which is
// itself a useful regression signal.
func BenchmarkE13ParallelSpeedup(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pipeline, err := bench.HeavyProductLine(8)
			if err != nil {
				b.Fatal(err)
			}
			limits := core.Limits{Parallelism: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := pipeline.RunContext(context.Background(), limits)
				if err != nil {
					b.Fatal(err)
				}
				if !report.OK() {
					b.Fatal("unexpected violations")
				}
			}
		})
	}
}
