#ifndef _DT_BINDINGS_CLOCK_DEMO_CLK_H
#define _DT_BINDINGS_CLOCK_DEMO_CLK_H

#define DEMO_CLK_CPU 0
#define DEMO_CLK_UART 1
#define DEMO_CLK_I2C 2
#define DEMO_CLK_SPI 3

/* Helper used by boards to pick a divider-encoded rate. */
#define DEMO_CLK_DIV(base, div) ((base) / (div))

#endif
