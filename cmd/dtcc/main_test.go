package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompileDecompileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dtb := filepath.Join(dir, "out.dtb")
	if err := run([]string{"compile", "../../testdata/customsbc.dts", "-o", dtb}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	info, err := os.Stat(dtb)
	if err != nil || info.Size() == 0 {
		t.Fatalf("dtb not written: %v", err)
	}
	dts := filepath.Join(dir, "out.dts")
	if err := run([]string{"decompile", dtb, "-o", dts}); err != nil {
		t.Fatalf("decompile: %v", err)
	}
	text, err := os.ReadFile(dts)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"memory@40000000", "cpu@0", "arm,cortex-a53"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("decompiled DTS missing %q", want)
		}
	}
}

func TestLintClean(t *testing.T) {
	if err := run([]string{"lint", "../../testdata/customsbc.dts", "-semantic"}); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestLintDetectsClash(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.dts")
	src := `
/dts-v1/;
/ {
	#address-cells = <1>;
	#size-cells = <1>;
	memory@40000000 {
		device_type = "memory";
		reg = <0x40000000 0x20000000>;
	};
	uart@40000000 { compatible = "ns16550a"; reg = <0x40000000 0x1000>; };
};
`
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// structural lint alone accepts it
	if err := run([]string{"lint", bad}); err != nil {
		t.Fatalf("structural lint should accept: %v", err)
	}
	// semantic lint rejects it
	err := run([]string{"lint", bad, "-semantic"})
	if err == nil || !strings.Contains(err.Error(), "problem") {
		t.Fatalf("semantic lint should reject: %v", err)
	}
}

func TestBadUsage(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"explode"},
		{"compile"},
		{"compile", "-o", "x"},
		{"decompile", "/does/not/exist.dtb"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
