// Command dtcc is a mini DeviceTree compiler built on the llhsc
// substrate: it compiles DTS source to flattened DTB blobs and back,
// and lints DTS files structurally and semantically.
//
// Usage:
//
//	dtcc compile   in.dts [-o out.dtb]
//	dtcc decompile in.dtb [-o out.dts]
//	dtcc lint      in.dts [-semantic]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"llhsc/internal/constraints"
	"llhsc/internal/dtb"
	"llhsc/internal/dts"
	"llhsc/internal/schema"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dtcc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: dtcc compile|decompile|lint <file> [flags]")
	}
	switch args[0] {
	case "compile":
		return cmdCompile(args[1:])
	case "decompile":
		return cmdDecompile(args[1:])
	case "lint":
		return cmdLint(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func splitInput(args []string) (string, []string, error) {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return "", nil, fmt.Errorf("missing input file")
	}
	return args[0], args[1:], nil
}

func cmdCompile(args []string) error {
	in, rest, err := splitInput(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("compile", flag.ContinueOnError)
	out := fs.String("o", "", "output .dtb file (default: stdout summary)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	tree, err := dts.ParseFile(in)
	if err != nil {
		return err
	}
	blob, err := dtb.Encode(tree)
	if err != nil {
		return err
	}
	if *out == "" {
		base := strings.TrimSuffix(in, ".dts") + ".dtb"
		*out = base
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes\n", *out, len(blob))
	return nil
}

func cmdDecompile(args []string) error {
	in, rest, err := splitInput(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("decompile", flag.ContinueOnError)
	out := fs.String("o", "", "output .dts file (default: stdout)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	blob, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	tree, err := dtb.Decode(blob)
	if err != nil {
		return err
	}
	text := tree.Print()
	if *out == "" {
		fmt.Print(text)
		return nil
	}
	return os.WriteFile(*out, []byte(text), 0o644)
}

func cmdLint(args []string) error {
	in, rest, err := splitInput(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	semantic := fs.Bool("semantic", false, "also run the SMT-based semantic checks")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	tree, err := dts.ParseFile(in)
	if err != nil {
		return err
	}
	problems := 0
	for _, w := range tree.Lint() {
		fmt.Println(w)
		problems++
	}
	for _, v := range schema.StandardSet().Validate(tree) {
		fmt.Println(v)
		problems++
	}
	if *semantic {
		collisions, violations := constraints.NewSemanticChecker().Check(tree)
		for _, c := range collisions {
			fmt.Println(c)
		}
		problems += len(collisions)
		for _, v := range violations {
			if v.Rule == "semantic:regions" {
				fmt.Println(v)
				problems++
			}
		}
		for _, v := range (constraints.InterruptChecker{}).Check(tree) {
			fmt.Println(v)
			problems++
		}
		for _, v := range (constraints.MemReserveChecker{}).Check(tree) {
			fmt.Println(v)
			problems++
		}
	}
	if problems > 0 {
		return fmt.Errorf("%d problem(s)", problems)
	}
	fmt.Printf("%s: clean\n", in)
	return nil
}
