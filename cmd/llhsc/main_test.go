package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llhsc/internal/featmodel"
)

const testdata = "../../testdata"

func TestCheckRunningExampleFromFiles(t *testing.T) {
	err := run([]string{
		"check",
		"-core", filepath.Join(testdata, "customsbc.dts"),
		"-deltas", filepath.Join(testdata, "customsbc.deltas"),
		"-fm", filepath.Join(testdata, "customsbc.fm"),
		"-vm", "memory,cpu@0,uart0,uart1,veth0",
		"-vm", "memory,cpu@1,uart0,uart1,veth1",
	})
	if err != nil {
		t.Fatalf("check failed: %v", err)
	}
}

func TestCheckRejectsSharedCPU(t *testing.T) {
	err := run([]string{
		"check",
		"-core", filepath.Join(testdata, "customsbc.dts"),
		"-deltas", filepath.Join(testdata, "customsbc.deltas"),
		"-fm", filepath.Join(testdata, "customsbc.fm"),
		"-vm", "memory,cpu@0,uart0,veth0",
		"-vm", "memory,cpu@0,uart1",
	})
	if err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("err = %v, want violations", err)
	}
}

func TestGenerateWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"generate",
		"-core", filepath.Join(testdata, "customsbc.dts"),
		"-deltas", filepath.Join(testdata, "customsbc.deltas"),
		"-fm", filepath.Join(testdata, "customsbc.fm"),
		"-vm", "memory,cpu@0,uart0,uart1,veth0",
		"-vm", "memory,cpu@1,uart0,uart1,veth1",
		"-o", dir,
	})
	if err != nil {
		t.Fatalf("generate failed: %v", err)
	}
	for _, f := range []string{"vm1.dts", "vm2.dts", "platform.dts", "platform.c", "config.c", "qemu.sh"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("artifact %s is empty", f)
		}
	}
	configC, _ := os.ReadFile(filepath.Join(dir, "config.c"))
	if !strings.Contains(string(configC), ".vmlist_size = 2") {
		t.Error("config.c lacks the VM list")
	}
}

func TestDemoSubcommand(t *testing.T) {
	if err := run([]string{"demo"}); err != nil {
		t.Fatalf("demo failed: %v", err)
	}
}

func TestInferFM(t *testing.T) {
	err := run([]string{"infer-fm", "-core", filepath.Join(testdata, "customsbc.dts")})
	if err != nil {
		t.Fatalf("infer-fm failed: %v", err)
	}
}

// TestParseCoreDTSPreprocesses: the core loader must run the cpp
// pipeline — resolving -I includes, honoring -D definitions — and map
// error positions back to the original files.
func TestParseCoreDTSPreprocesses(t *testing.T) {
	dir := t.TempDir()
	inc := filepath.Join(dir, "inc")
	if err := os.MkdirAll(inc, 0o755); err != nil {
		t.Fatal(err)
	}
	mustWrite := func(path, src string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite(filepath.Join(inc, "board.h"), "#define UART_BASE 0x9000000\n")
	core := filepath.Join(dir, "core.dts")
	mustWrite(core, `/dts-v1/;
#include <board.h>
/ {
	uart0: uart@9000000 {
		compatible = "ns16550a";
		reg = <UART_BASE 0x1000>;
#ifdef WITH_EXTRA
		extra-prop;
#endif
	};
};
`)

	tree, err := parseCoreDTS(core, []string{inc}, map[string]string{"WITH_EXTRA": "1"})
	if err != nil {
		t.Fatalf("parseCoreDTS: %v", err)
	}
	uart := tree.Root.Child("uart@9000000")
	if uart == nil {
		t.Fatal("uart node missing")
	}
	if v, ok := uart.CellValue("reg"); !ok || v != 0x9000000 {
		t.Errorf("reg[0] = %#x, %v; want UART_BASE expanded to 0x9000000", v, ok)
	}
	if uart.Property("extra-prop") == nil {
		t.Error("-D WITH_EXTRA did not enable the #ifdef branch")
	}

	plain, err := parseCoreDTS(core, []string{inc}, nil)
	if err != nil {
		t.Fatalf("parseCoreDTS without defines: %v", err)
	}
	if plain.Root.Child("uart@9000000").Property("extra-prop") != nil {
		t.Error("#ifdef branch active without -D WITH_EXTRA")
	}

	// A syntax error inside an include must be blamed on the header.
	mustWrite(filepath.Join(inc, "bad.h"), "/ { broken = ; };\n")
	badCore := filepath.Join(dir, "bad.dts")
	mustWrite(badCore, "/dts-v1/;\n#include <bad.h>\n")
	if _, err := parseCoreDTS(badCore, []string{inc}, nil); err == nil {
		t.Fatal("expected error from broken include")
	} else if !strings.Contains(err.Error(), "bad.h") {
		t.Errorf("error not mapped to the include: %v", err)
	}
}

func TestDefineFlags(t *testing.T) {
	d := defineFlags{}
	if err := d.Set("PLAIN"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("PAIR=0x10"); err != nil {
		t.Fatal(err)
	}
	if d["PLAIN"] != "1" || d["PAIR"] != "0x10" {
		t.Errorf("defines = %v", d)
	}
	if err := d.Set("=oops"); err == nil {
		t.Error("empty macro name must be rejected")
	}
}

func TestUsageErrors(t *testing.T) {
	tests := [][]string{
		{},
		{"unknown-subcommand"},
		{"check"},
		{"check", "-core", "x.dts"},
		{"infer-fm"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCompleteConfigImpliesAncestors(t *testing.T) {
	fmSrc, err := os.ReadFile(filepath.Join(testdata, "customsbc.fm"))
	if err != nil {
		t.Fatal(err)
	}
	model := mustModel(t, string(fmSrc))
	cfg := completeConfig(model, []string{"veth0", " cpu@0", ""})
	for _, want := range []string{"veth0", "cpu@0", "vEthernet", "cpus", "CustomSBC"} {
		if !cfg[want] {
			t.Errorf("completeConfig missing %s: %v", want, cfg.Sorted())
		}
	}
}

func mustModel(t *testing.T, src string) *featmodel.Model {
	t.Helper()
	m, err := featmodel.ParseModel("test.fm", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProductsSubcommand(t *testing.T) {
	if err := run([]string{"products", "-fm", filepath.Join(testdata, "customsbc.fm")}); err != nil {
		t.Fatalf("products: %v", err)
	}
	if err := run([]string{"products"}); err == nil {
		t.Error("products without -fm should fail")
	}
}

func TestCheckWithYAMLSchemasDir(t *testing.T) {
	err := run([]string{
		"check",
		"-core", filepath.Join(testdata, "customsbc.dts"),
		"-deltas", filepath.Join(testdata, "customsbc.deltas"),
		"-fm", filepath.Join(testdata, "customsbc.fm"),
		"-schemas", filepath.Join(testdata, "schemas"),
		"-vm", "memory,cpu@0,uart0,uart1,veth0",
		"-vm", "memory,cpu@1,uart0,uart1,veth1",
	})
	if err != nil {
		t.Fatalf("check with YAML schema dir failed: %v", err)
	}
}

func TestSchemasDirWithoutYAML(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"check",
		"-core", filepath.Join(testdata, "customsbc.dts"),
		"-deltas", filepath.Join(testdata, "customsbc.deltas"),
		"-fm", filepath.Join(testdata, "customsbc.fm"),
		"-schemas", dir,
		"-vm", "memory,cpu@0,uart0",
	})
	if err == nil || !strings.Contains(err.Error(), "no .yaml schemas") {
		t.Errorf("err = %v", err)
	}
}
