// Command llhsc is the DeviceTree syntax and semantic checker: it
// derives per-VM DTS products from a core module + delta set + feature
// model, proves the allocation/syntactic/semantic constraints with the
// built-in SMT solver, and generates Bao hypervisor configuration files.
//
// Usage:
//
//	llhsc check    -core board.dts -deltas board.deltas -fm board.fm -vm veth0,... -vm veth1,...
//	llhsc generate -core board.dts -deltas board.deltas -fm board.fm -vm ... -vm ... -o outdir
//	llhsc infer-fm -core board.dts
//	llhsc replay   slowquery-<key>.json  (re-execute a slow-query reproducer)
//	llhsc demo     [-o outdir]      (the paper's running example)
//
// VM configurations are comma-separated feature lists; names of
// abstract parents may be omitted (they are implied by their children).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"llhsc/internal/buildinfo"
	"llhsc/internal/constraints"
	"llhsc/internal/core"
	"llhsc/internal/delta"
	"llhsc/internal/dts"
	"llhsc/internal/dts/preproc"
	"llhsc/internal/featmodel"
	"llhsc/internal/obs"
	"llhsc/internal/runningexample"
	"llhsc/internal/schema"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "llhsc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "check":
		return cmdCheckOrGenerate(args[1:], false)
	case "generate":
		return cmdCheckOrGenerate(args[1:], true)
	case "products":
		return cmdProducts(args[1:])
	case "infer-fm":
		return cmdInferFM(args[1:])
	case "demo":
		return cmdDemo(args[1:])
	case "replay":
		return cmdReplay(args[1:])
	case "version":
		info := buildinfo.Get()
		fmt.Printf("llhsc %s (commit %s, built %s, %s)\n",
			info.Version, info.Commit, info.Date, info.GoVersion)
		return nil
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  llhsc check    -core <dts> -deltas <file> -fm <file> -vm <features> [-vm ...] [-I <dir> ...] [-D <name[=value]> ...] [-schemas <dir>] [-parallel n] [-mode enumerate|lifted] [-semantic-strategy word|sweep|assume|pairwise|word-off] [-trace] [-trace-json <file>] [-slow-query-ms <t> [-slow-query-dir <dir>]]
  llhsc generate -core <dts> -deltas <file> -fm <file> -vm <features> [-vm ...] [-I <dir> ...] [-D <name[=value]> ...] [-o <dir>] [-parallel n] [-mode enumerate|lifted] [-semantic-strategy word|sweep|assume|pairwise|word-off]
  llhsc products -fm <file> [-limit n]
  llhsc infer-fm -core <dts> [-I <dir> ...] [-D <name[=value]> ...]
  llhsc replay   <bundle.json> [...]   (re-execute slow-query reproducer bundles)
  llhsc demo     [-o <dir>]
  llhsc version

Core DTS files are run through the built-in cpp-style preprocessor:
#include (searching -I directories), #define/-D macros and
#ifdef/#ifndef conditionals work as they do in the Linux kernel's DTS
build, and diagnostics point at the original file and line.`)
}

// vmFlags accumulates repeated -vm flags.
type vmFlags []string

func (v *vmFlags) String() string { return strings.Join(*v, ";") }
func (v *vmFlags) Set(s string) error {
	*v = append(*v, s)
	return nil
}

// includeFlags accumulates repeated -I include directories.
type includeFlags []string

func (v *includeFlags) String() string { return strings.Join(*v, ":") }
func (v *includeFlags) Set(s string) error {
	*v = append(*v, s)
	return nil
}

// defineFlags accumulates repeated -D NAME[=VALUE] macro definitions;
// a bare NAME defines it as 1, matching cpp.
type defineFlags map[string]string

func (d defineFlags) String() string {
	parts := make([]string, 0, len(d))
	for name, val := range d {
		parts = append(parts, name+"="+val)
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

func (d defineFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if name == "" {
		return fmt.Errorf("-D requires NAME or NAME=VALUE")
	}
	if !ok {
		val = "1"
	}
	d[name] = val
	return nil
}

// parseCoreDTS runs the real-world ingestion pipeline on a DTS file:
// cpp preprocessing (#include/#define/#ifdef with the -I search path
// and -D definitions) followed by parsing, with error positions mapped
// back to the original files. dtc-style /include/ directives still
// resolve relative to the file.
func parseCoreDTS(path string, includes []string, defines map[string]string) (*dts.Tree, error) {
	return preproc.ParseFile(path, preproc.Options{
		IncludePaths: includes,
		Defines:      defines,
	}, dts.WithIncluder(dts.DirIncluder(filepath.Dir(path))))
}

func cmdCheckOrGenerate(args []string, generate bool) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	corePath := fs.String("core", "", "core-module DTS file")
	deltasPath := fs.String("deltas", "", "delta-module file")
	fmPath := fs.String("fm", "", "feature-model file")
	schemasDir := fs.String("schemas", "", "directory of dt-schema YAML files (default: built-in set)")
	outDir := fs.String("o", "out", "output directory (generate only)")
	parallel := fs.Int("parallel", 0,
		"worker count for per-VM checking (0 = GOMAXPROCS, 1 = serial)")
	var strategy constraints.SemanticStrategy
	fs.Var(&strategy, "semantic-strategy",
		"semantic-check strategy: word (interval tier, sweep spelling), sweep (O(n log n) prefilter + word tier + SMT), assume (one incremental solver + word tier), pairwise (one solve per pair, no word tier), word-off (sweep without the word tier)")
	var mode core.Mode
	fs.Var(&mode, "mode",
		"checking mode: enumerate (derive and check each requested product) or lifted (verify the whole product line in one incremental solver session)")
	trace := fs.Bool("trace", false,
		"print the phase span tree and solver statistics to stderr")
	traceJSON := fs.String("trace-json", "",
		"write the phase span tree as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
	slowQueryMs := fs.Float64("slow-query-ms", 0,
		"log solver queries at or over this many milliseconds to stderr (0 = off)")
	slowQueryDir := fs.String("slow-query-dir", "",
		"write a replayable reproducer bundle per slow query into this directory (requires -slow-query-ms)")
	var vms vmFlags
	fs.Var(&vms, "vm", "feature list for one VM (repeatable)")
	var includes includeFlags
	fs.Var(&includes, "I", "cpp include search directory for the core DTS (repeatable)")
	defines := defineFlags{}
	fs.Var(defines, "D", "cpp macro NAME[=VALUE] predefined for the core DTS (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corePath == "" || *deltasPath == "" || *fmPath == "" {
		return fmt.Errorf("check/generate require -core, -deltas and -fm")
	}
	if len(vms) == 0 {
		return fmt.Errorf("at least one -vm configuration is required")
	}

	tree, err := parseCoreDTS(*corePath, includes, defines)
	if err != nil {
		return err
	}
	deltaSrc, err := os.ReadFile(*deltasPath)
	if err != nil {
		return err
	}
	deltas, err := delta.Parse(filepath.Base(*deltasPath), string(deltaSrc))
	if err != nil {
		return err
	}
	fmSrc, err := os.ReadFile(*fmPath)
	if err != nil {
		return err
	}
	model, err := featmodel.ParseModel(filepath.Base(*fmPath), string(fmSrc))
	if err != nil {
		return err
	}
	schemas, err := loadSchemas(*schemasDir)
	if err != nil {
		return err
	}

	configs := make([]featmodel.Configuration, len(vms))
	for i, list := range vms {
		configs[i] = completeConfig(model, strings.Split(list, ","))
	}

	pipeline := &core.Pipeline{
		Core:             tree,
		Deltas:           deltas,
		Model:            model,
		Schemas:          schemas,
		VMConfigs:        configs,
		SemanticStrategy: strategy,
		Mode:             mode,
	}
	if *slowQueryMs > 0 {
		pipeline.SlowQuery = obs.NewSlowQueryLog(os.Stderr, *slowQueryMs)
		pipeline.SlowQueryBundleDir = *slowQueryDir
	}
	ctx := context.Background()
	var root *obs.Span
	if *trace || *traceJSON != "" {
		root = obs.NewSpan("llhsc")
		ctx = obs.ContextWithSpan(ctx, root)
	}
	report, err := pipeline.RunContext(ctx, core.Limits{Parallelism: *parallel})
	if root != nil {
		root.End()
		if *trace {
			printTrace(os.Stderr, root, report)
		}
		if *traceJSON != "" {
			if werr := writeTraceJSON(*traceJSON, root); werr != nil {
				return werr
			}
		}
	}
	if err != nil {
		return err
	}
	printReport(report)
	if !report.OK() {
		return fmt.Errorf("%d violation(s)", len(report.AllViolations()))
	}
	if generate {
		return writeArtifacts(report, *outDir)
	}
	return nil
}

// completeConfig adds abstract ancestors implied by the selected
// features, so users can write "-vm memory,cpu@0,uart0,veth0".
func completeConfig(model *featmodel.Model, names []string) featmodel.Configuration {
	cfg := make(featmodel.Configuration)
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		cfg[n] = true
		for p := model.Parent(n); p != nil; p = model.Parent(p.Name) {
			cfg[p.Name] = true
		}
	}
	cfg[model.Root.Name] = true
	return cfg
}

func loadSchemas(dir string) (*schema.Set, error) {
	if dir == "" {
		return schema.StandardSet(), nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	set := &schema.Set{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".yaml") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc, err := schema.Load(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if sc.ID == "" {
			sc.ID = e.Name()
		}
		set.Add(sc)
	}
	if len(set.Schemas) == 0 {
		return nil, fmt.Errorf("no .yaml schemas found in %s", dir)
	}
	return set, nil
}

// writeTraceJSON exports the finished span tree in Chrome trace-event
// form. The file is byte-deterministic for a fixed span tree.
func writeTraceJSON(path string, root *obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.WriteChromeTrace(f, root.Snapshot())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("trace-json: %w", werr)
	}
	return nil
}

// cmdReplay re-executes slow-query reproducer bundles (written by
// -slow-query-dir or the server's SlowQueryBundleDir) and compares each
// verdict and witness against the recorded ones. Any mismatch makes the
// command fail, so replays can gate CI.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("replay requires at least one bundle file")
	}
	mismatches := 0
	for _, path := range fs.Args() {
		b, err := core.ReadReproBundle(path)
		if err != nil {
			return err
		}
		res, err := b.Replay(context.Background())
		if err != nil {
			return fmt.Errorf("replay %s: %w", path, err)
		}
		status := "MATCH"
		if !res.Match {
			status = "MISMATCH"
			mismatches++
		}
		fmt.Printf("%s: %s kind=%s verdict=%s", filepath.Base(path), status, b.Kind, res.Verdict)
		if res.Witness != "" {
			fmt.Printf(" witness=%s", res.Witness)
		}
		fmt.Printf(" millis=%.2f (recorded verdict=%s millis=%.2f)\n",
			res.Millis, b.Query.Verdict, b.Query.Millis)
	}
	if mismatches > 0 {
		return fmt.Errorf("%d bundle(s) did not reproduce their recorded outcome", mismatches)
	}
	return nil
}

// printTrace renders the span tree and the per-family solver-work
// summary to w (stderr for -trace, keeping stdout parseable).
func printTrace(w io.Writer, root *obs.Span, r *core.Report) {
	fmt.Fprintln(w, "--- trace ---")
	root.WriteTree(w)
	if r == nil {
		return
	}
	fmt.Fprintln(w, "--- solver stats ---")
	families := make([]string, 0, len(r.Stats.Families))
	for name := range r.Stats.Families {
		families = append(families, name)
	}
	sort.Strings(families)
	for _, name := range families {
		fs := r.Stats.Families[name]
		fmt.Fprintf(w,
			"%-12s checks=%d solver_calls=%d pairs=%d pruned=%d conflicts=%d propagations=%d restarts=%d intern_hits=%d intern_misses=%d\n",
			name, fs.Checks, fs.SolverCalls, fs.Pairs, fs.PairsPruned,
			fs.Conflicts, fs.Propagations, fs.Restarts, fs.InternHits, fs.InternMisses)
	}
	if ls := r.Stats.Lifted; ls != nil {
		fmt.Fprintf(w, "lifted       queries=%d pruned=%d word_decided=%d sessions=%d findings=%d\n",
			ls.Queries, ls.Pruned, ls.WordDecided, ls.Sessions, ls.Findings)
	}
	if r.Stats.CacheHits+r.Stats.CacheMisses > 0 {
		fmt.Fprintf(w, "cache        hits=%d misses=%d\n", r.Stats.CacheHits, r.Stats.CacheMisses)
	}
}

func printReport(r *core.Report) {
	status := "PASS"
	if !r.OK() {
		status = "FAIL"
	}
	fmt.Printf("llhsc: %s (%d VM(s), %d violation(s))\n",
		status, len(r.VMs), len(r.AllViolations()))
	for _, v := range r.Allocation {
		fmt.Printf("  allocation: %s\n", v)
	}
	for _, f := range r.Lifted {
		fmt.Printf("  lifted: %s\n", f)
	}
	for _, vm := range r.VMs {
		fmt.Printf("  %s: deltas %v, %d violation(s)\n", vm.Name, vm.Trace, len(vm.Violations))
		for _, v := range vm.Violations {
			fmt.Printf("    %s\n", v)
		}
	}
	if len(r.Platform.Violations) > 0 {
		fmt.Printf("  platform: %d violation(s)\n", len(r.Platform.Violations))
		for _, v := range r.Platform.Violations {
			fmt.Printf("    %s\n", v)
		}
	}
}

func writeArtifacts(r *core.Report, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := map[string]string{
		"platform.dts":     r.Platform.DTS,
		"platform.c":       r.PlatformC,
		"config.c":         r.ConfigC,
		"jailhouse-root.c": r.JailhouseRootC,
		"qemu.sh":          "#!/bin/sh\nexec " + strings.Join(r.QEMUArgs, " ") + " \"$@\"\n",
	}
	for i, vm := range r.VMs {
		files[vm.Name+".dts"] = vm.DTS
		if i < len(r.JailhouseCellsC) {
			files["jailhouse-"+vm.Name+".c"] = r.JailhouseCellsC[i]
		}
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d artifacts to %s\n", len(files), dir)
	return nil
}

// cmdProducts enumerates the valid products of a feature model.
func cmdProducts(args []string) error {
	fs := flag.NewFlagSet("products", flag.ContinueOnError)
	fmPath := fs.String("fm", "", "feature-model file")
	limit := fs.Int("limit", 0, "maximum products to list (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fmPath == "" {
		return fmt.Errorf("products requires -fm")
	}
	src, err := os.ReadFile(*fmPath)
	if err != nil {
		return err
	}
	model, err := featmodel.ParseModel(filepath.Base(*fmPath), string(src))
	if err != nil {
		return err
	}
	products, complete := featmodel.NewAnalyzer(model).EnumerateProducts(*limit)
	for i, p := range products {
		fmt.Printf("%3d: %s\n", i+1, strings.Join(p, " "))
	}
	if !complete {
		fmt.Println("... (limit reached)")
	}
	fmt.Printf("%d valid product(s)\n", len(products))
	return nil
}

func cmdInferFM(args []string) error {
	fs := flag.NewFlagSet("infer-fm", flag.ContinueOnError)
	corePath := fs.String("core", "", "core-module DTS file")
	var includes includeFlags
	fs.Var(&includes, "I", "cpp include search directory (repeatable)")
	defines := defineFlags{}
	fs.Var(defines, "D", "cpp macro NAME[=VALUE] (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corePath == "" {
		return fmt.Errorf("infer-fm requires -core")
	}
	tree, err := parseCoreDTS(*corePath, includes, defines)
	if err != nil {
		return err
	}
	model, err := featmodel.InferFromDTS(tree, featmodel.InferOptions{})
	if err != nil {
		return err
	}
	fmt.Print(model.Format())
	return nil
}

func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	outDir := fs.String("o", "", "write artifacts to this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tree, err := runningexample.Tree()
	if err != nil {
		return err
	}
	deltas, err := runningexample.Deltas()
	if err != nil {
		return err
	}
	model, err := runningexample.Model()
	if err != nil {
		return err
	}
	pipeline := &core.Pipeline{
		Core:    tree,
		Deltas:  deltas,
		Model:   model,
		Schemas: schema.StandardSet(),
		VMConfigs: []featmodel.Configuration{
			runningexample.VM1Config(), runningexample.VM2Config(),
		},
		VMNames: []string{"vm1", "vm2"},
	}
	report, err := pipeline.Run()
	if err != nil {
		return err
	}
	printReport(report)
	if !report.OK() {
		return fmt.Errorf("running example failed its own checks")
	}
	if *outDir != "" {
		return writeArtifacts(report, *outDir)
	}
	fmt.Println("--- platform.c (Listing 3) ---")
	fmt.Print(report.PlatformC)
	fmt.Println("--- config.c (Listing 6) ---")
	fmt.Print(report.ConfigC)
	return nil
}
