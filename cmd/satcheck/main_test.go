package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSatInstance(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-"}, strings.NewReader("p cnf 2 2\n1 2 0\n-1 0\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 10 {
		t.Errorf("exit = %d, want 10", code)
	}
	s := out.String()
	if !strings.Contains(s, "s SATISFIABLE") || !strings.Contains(s, "v -1 2 0") {
		t.Errorf("output = %q", s)
	}
}

func TestUnsatInstance(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-"}, strings.NewReader("p cnf 1 2\n1 0\n-1 0\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 20 || !strings.Contains(out.String(), "s UNSATISFIABLE") {
		t.Errorf("exit = %d output = %q", code, out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(nil, nil, &out); err == nil {
		t.Error("missing arg should fail")
	}
	if _, err := run([]string{"/does/not/exist.cnf"}, nil, &out); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := run([]string{"-"}, strings.NewReader("garbage"), &out); err == nil {
		t.Error("parse error should fail")
	}
}
