// Command satcheck is a standalone DIMACS front end for the CDCL
// solver in internal/sat — useful for validating the solver against
// external CNF instances and for debugging encodings dumped from the
// SMT layer.
//
// Usage:
//
//	satcheck file.cnf     # or: satcheck - (stdin)
//
// Output follows SAT-competition conventions:
//
//	s SATISFIABLE | s UNSATISFIABLE
//	v <model literals> 0          (for satisfiable instances)
//
// Exit codes: 10 = sat, 20 = unsat (the competition convention), 1 =
// usage or parse error.
package main

import (
	"fmt"
	"io"
	"os"

	"llhsc/internal/sat"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "satcheck:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("usage: satcheck <file.cnf | ->")
	}
	var r io.Reader
	if args[0] == "-" {
		r = stdin
	} else {
		f, err := os.Open(args[0])
		if err != nil {
			return 0, err
		}
		defer f.Close()
		r = f
	}
	status, model, err := sat.SolveDIMACS(r)
	if err != nil {
		return 0, err
	}
	switch status {
	case sat.Sat:
		fmt.Fprintln(stdout, "s SATISFIABLE")
		fmt.Fprint(stdout, "v")
		for _, l := range model {
			fmt.Fprintf(stdout, " %d", l)
		}
		fmt.Fprintln(stdout, " 0")
		return 10, nil
	case sat.Unsat:
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
		return 20, nil
	default:
		fmt.Fprintln(stdout, "s UNKNOWN")
		return 0, nil
	}
}
