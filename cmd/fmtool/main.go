// Command fmtool runs the automated feature-model analyses of the
// paper's Section II-B over a model in the textual format of
// internal/featmodel (see cmd/llhsc's -fm flag).
//
// Usage:
//
//	fmtool count     -fm model.fm [-limit n]
//	fmtool enumerate -fm model.fm [-limit n]
//	fmtool void      -fm model.fm
//	fmtool dead      -fm model.fm
//	fmtool core      -fm model.fm
//	fmtool valid     -fm model.fm -config a,b,c
//	fmtool partition -fm model.fm -vms k
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"llhsc/internal/featmodel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fmtool:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: fmtool count|enumerate|void|dead|core|valid|partition -fm <file> [flags]")
	}
	sub := args[0]
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	fmPath := fs.String("fm", "", "feature-model file")
	limit := fs.Int("limit", 0, "limit for count/enumerate (0 = unlimited)")
	config := fs.String("config", "", "comma-separated feature selection (valid)")
	vms := fs.Int("vms", 2, "VM count (partition)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *fmPath == "" {
		return fmt.Errorf("-fm is required")
	}
	src, err := os.ReadFile(*fmPath)
	if err != nil {
		return err
	}
	model, err := featmodel.ParseModel(filepath.Base(*fmPath), string(src))
	if err != nil {
		return err
	}
	a := featmodel.NewAnalyzer(model)

	switch sub {
	case "count":
		n, complete := a.CountProducts(*limit)
		suffix := ""
		if !complete {
			suffix = "+ (limit reached)"
		}
		fmt.Printf("%d%s\n", n, suffix)
	case "enumerate":
		products, complete := a.EnumerateProducts(*limit)
		for _, p := range products {
			fmt.Println(strings.Join(p, " "))
		}
		if !complete {
			fmt.Println("... (limit reached)")
		}
	case "void":
		fmt.Println(a.IsVoid())
	case "dead":
		for _, f := range a.DeadFeatures() {
			fmt.Println(f)
		}
	case "core":
		for _, f := range a.CoreFeatures() {
			fmt.Println(f)
		}
	case "valid":
		if *config == "" {
			return fmt.Errorf("valid requires -config")
		}
		cfg := featmodel.ConfigOf(strings.Split(*config, ",")...)
		// select abstract ancestors implicitly
		for name := range cfg {
			for p := model.Parent(name); p != nil; p = model.Parent(p.Name) {
				cfg[p.Name] = true
			}
		}
		cfg[model.Root.Name] = true
		if a.IsValid(cfg) {
			fmt.Println("valid")
			return nil
		}
		fmt.Printf("invalid: %v\n", a.ExplainInvalid(cfg))
		return fmt.Errorf("configuration is not a valid product")
	case "partition":
		mm, err := featmodel.NewMultiModel(model, *vms)
		if err != nil {
			return err
		}
		ma, err := featmodel.NewMultiAnalyzer(mm)
		if err != nil {
			return err
		}
		if ma.IsVoid() {
			fmt.Printf("infeasible: no valid partitioning into %d VMs\n", *vms)
			return fmt.Errorf("infeasible")
		}
		configs, err := ma.SolveAssignment(nil)
		if err != nil {
			return err
		}
		for i, cfg := range configs {
			fmt.Printf("vm%d: %s\n", i+1, strings.Join(cfg.Sorted(), " "))
		}
	default:
		return fmt.Errorf("unknown subcommand %q", sub)
	}
	return nil
}
