package main

import (
	"testing"
)

const fm = "../../testdata/customsbc.fm"

func TestAnalyses(t *testing.T) {
	for _, args := range [][]string{
		{"count", "-fm", fm},
		{"enumerate", "-fm", fm, "-limit", "3"},
		{"void", "-fm", fm},
		{"dead", "-fm", fm},
		{"core", "-fm", fm},
		{"valid", "-fm", fm, "-config", "memory,cpu@0,uart0"},
		{"partition", "-fm", fm, "-vms", "2"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestInvalidConfigFails(t *testing.T) {
	err := run([]string{"valid", "-fm", fm, "-config", "memory,cpu@0,cpu@1,uart0"})
	if err == nil {
		t.Error("both CPUs should be an invalid product")
	}
}

func TestInfeasiblePartition(t *testing.T) {
	if err := run([]string{"partition", "-fm", fm, "-vms", "3"}); err == nil {
		t.Error("3 VMs over 2 exclusive CPUs should be infeasible")
	}
}

func TestBadUsage(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"count"},
		{"frobnicate", "-fm", fm},
		{"valid", "-fm", fm},
		{"count", "-fm", "/does/not/exist.fm"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
