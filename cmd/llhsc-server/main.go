// Command llhsc-server serves the llhsc checker as an HTTP API — the
// "cloud service" deployment of the paper's Section V. See
// internal/service for the endpoints and README.md for the error
// taxonomy and limit semantics.
//
// Usage:
//
//	llhsc-server [-addr :8080] [-read-timeout 30s] [-write-timeout 60s]
//	             [-request-timeout 30s] [-max-inflight 16]
//	             [-max-body 4194304] [-solver-conflicts 0]
//	             [-shutdown-grace 15s] [-parallel 0] [-cache-size 256]
//	             [-cache-dir ""] [-cache-max-bytes 0] [-degrade off]
//	             [-semantic-strategy sweep] [-mode enumerate]
//	             [-pprof 0] [-log-requests=true] [-flight-size 64]
//	             [-flight-dump ""] [-slow-query-ms 0] [-slow-query-dir ""]
//
// The server always serves Prometheus-format metrics on GET /metrics
// (request latency, solver work, cache counters) and, unless
// -log-requests=false, writes one structured JSON log line per request
// to stderr, correlated with responses by X-Request-ID.
//
// The server drains gracefully on SIGINT/SIGTERM: new /check and
// /lint requests answer 503 + Retry-After (reason "draining") so load
// balancers fail over immediately, in-flight requests get
// -shutdown-grace to complete, then the listener closes, the
// persistent cache (if any) is flushed and closed, and the process
// exits 0.
//
// -cache-dir layers the crash-safe persistent cache tier under the
// in-memory cache: check results survive restarts, torn or corrupt
// records are truncated/quarantined on open, and a circuit breaker
// falls back to memory-only mode while the disk misbehaves. -degrade
// auto sheds /check to lint-only checking while the in-flight
// semaphore stays saturated (see README.md "Durability & degradation").
//
// -pprof <port> exposes net/http/pprof on 127.0.0.1:<port> (loopback
// only, never the service listener); 0 keeps profiling off.
//
// -flight-size keeps the last N requests in a flight-recorder ring,
// served as JSON on GET /debug/flight to loopback peers; with
// -flight-dump the ring is written to disk when a request panics, a
// solver budget runs out, or the process receives SIGQUIT.
// -slow-query-ms logs solver queries over the threshold as structured
// warn lines, and -slow-query-dir additionally writes a replayable
// reproducer bundle per slow query for `llhsc replay`.
//
// Build metadata (llhsc_build_info on /metrics, the "build" block on
// /healthz, the startup log line) is stamped at build time:
//
//	go build -ldflags "-X llhsc/internal/buildinfo.Version=v1.2.3 \
//	  -X llhsc/internal/buildinfo.Commit=$(git rev-parse --short HEAD) \
//	  -X llhsc/internal/buildinfo.Date=$(date -u +%Y-%m-%dT%H:%M:%SZ)" ./cmd/llhsc-server
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (served only when -pprof is set)
	"os"
	"os/signal"
	"syscall"
	"time"

	"llhsc/internal/buildinfo"
	"llhsc/internal/constraints"
	"llhsc/internal/core"
	"llhsc/internal/obs"
	"llhsc/internal/sat"
	"llhsc/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); errors.Is(err, flag.ErrHelp) {
		return
	} else if err != nil {
		fmt.Fprintln(os.Stderr, "llhsc-server:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until ctx is canceled (SIGINT /
// SIGTERM) or the listener fails. ready, if non-nil, receives the
// bound address once the server is listening (used by tests with
// -addr 127.0.0.1:0).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("llhsc-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	readTimeout := fs.Duration("read-timeout", 30*time.Second,
		"max time to read a full request, including the body (0 = unlimited)")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second,
		"max time to write a full response (0 = unlimited)")
	requestTimeout := fs.Duration("request-timeout", 30*time.Second,
		"wall-clock budget per /check or /lint request; exceeding it answers 408 (0 = unlimited)")
	maxInflight := fs.Int("max-inflight", 16,
		"max concurrent /check and /lint requests; excess answers 429 (0 = unlimited)")
	maxBody := fs.Int64("max-body", 4<<20,
		"max request body size in bytes; larger bodies answer 413")
	solverConflicts := fs.Uint64("solver-conflicts", 0,
		"max SAT conflicts per request's solver queries; exhaustion answers 503 (0 = unlimited)")
	shutdownGrace := fs.Duration("shutdown-grace", 15*time.Second,
		"how long in-flight requests may finish after SIGINT/SIGTERM")
	parallel := fs.Int("parallel", 0,
		"worker count for per-VM checking within one request (0 = GOMAXPROCS, 1 = serial)")
	cacheSize := fs.Int("cache-size", 256,
		"capacity of the content-addressed check-result cache, in trees (0 = disabled)")
	cacheDir := fs.String("cache-dir", "",
		"directory for the crash-safe persistent cache tier; results survive restarts (empty = memory-only)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0,
		"total on-disk byte cap for -cache-dir; oldest segments are dropped first (0 = the built-in default)")
	degrade := fs.String("degrade", "off",
		"overload shedding for /check: off, auto (lint-only while the in-flight semaphore stays saturated), force")
	var strategy constraints.SemanticStrategy
	fs.Var(&strategy, "semantic-strategy",
		"semantic-check strategy: word (interval tier, sweep spelling), sweep (O(n log n) prefilter + word tier + SMT), assume (one incremental solver + word tier), pairwise (one solve per pair, no word tier), word-off (sweep without the word tier)")
	var mode core.Mode
	fs.Var(&mode, "mode",
		"default checking mode for /check: enumerate (per-product) or lifted (whole product line, one solver session); requests may override per-call")
	pprofPort := fs.Int("pprof", 0,
		"expose net/http/pprof on 127.0.0.1:<port> (0 = disabled)")
	logRequests := fs.Bool("log-requests", true,
		"emit one structured JSON log line per request on stderr")
	flightSize := fs.Int("flight-size", obs.DefaultFlightCapacity,
		"flight-recorder ring size: last N requests served on GET /debug/flight, loopback only (0 = disabled)")
	flightDump := fs.String("flight-dump", "",
		"file the flight ring is dumped to on a panic, a budget-limit stop or SIGQUIT (empty = no dumps)")
	slowQueryMs := fs.Float64("slow-query-ms", 0,
		"log solver queries at or over this many milliseconds as structured warn lines (0 = off)")
	slowQueryDir := fs.String("slow-query-dir", "",
		"write a replayable reproducer bundle per slow query into this directory, for `llhsc replay` (requires -slow-query-ms)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *degrade {
	case "", service.DegradeOff, service.DegradeAuto, service.DegradeForce:
	default:
		return fmt.Errorf("unknown -degrade mode %q (want off, auto or force)", *degrade)
	}

	opts := service.Options{
		RequestTimeout:     *requestTimeout,
		MaxInFlight:        *maxInflight,
		MaxBodyBytes:       *maxBody,
		CacheSize:          *cacheSize,
		CacheDir:           *cacheDir,
		CacheMaxBytes:      *cacheMaxBytes,
		Degrade:            *degrade,
		SemanticStrategy:   strategy,
		Mode:               mode,
		Registry:           obs.NewRegistry(), // serves GET /metrics
		FlightSize:         *flightSize,
		FlightDumpPath:     *flightDump,
		SlowQueryMs:        *slowQueryMs,
		SlowQueryBundleDir: *slowQueryDir,
		Limits: core.Limits{
			Solver:      sat.Budget{MaxConflicts: *solverConflicts},
			Parallelism: *parallel,
		},
	}
	if *cacheDir != "" && *cacheSize <= 0 {
		return fmt.Errorf("-cache-dir requires -cache-size > 0")
	}
	if *logRequests {
		opts.LogWriter = os.Stderr
	}
	svc, err := service.NewService(opts)
	if err != nil {
		return err
	}
	defer svc.Close()
	handler := http.Handler(svc)
	info := buildinfo.Get()
	log.Printf("llhsc-server %s (commit %s, built %s, %s)",
		info.Version, info.Commit, info.Date, info.GoVersion)
	if *cacheDir != "" {
		log.Printf("llhsc-server persistent cache tier at %s", *cacheDir)
	}

	if fr := svc.FlightRecorder(); fr != nil && *flightDump != "" {
		// SIGQUIT dumps the flight ring on demand (kill -QUIT <pid>)
		// instead of the Go runtime's goroutine-dump-and-exit default.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				if path, derr := fr.Dump("sigquit", ""); derr != nil {
					log.Printf("flight dump: %v", derr)
				} else if path != "" {
					log.Printf("flight ring dumped to %s", path)
				}
			}
		}()
	}

	if *pprofPort != 0 {
		// The profiler gets its own loopback-only listener so it can
		// never be reached through the service address.
		pprofLn, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", *pprofPort))
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pprofLn.Close()
		log.Printf("llhsc-server pprof on http://%s/debug/pprof/", pprofLn.Addr())
		go func() {
			// http.DefaultServeMux carries the net/http/pprof routes.
			err := http.Serve(pprofLn, nil)
			if err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("llhsc-server listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	log.Printf("llhsc-server shutting down, draining for up to %v", *shutdownGrace)
	// Flip the draining gate first: requests arriving during the grace
	// period get an immediate 503 + Retry-After instead of racing the
	// listener teardown, while requests already in flight finish.
	svc.SetDraining(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := svc.Close(); err != nil {
		return fmt.Errorf("closing persistent cache: %w", err)
	}
	log.Printf("llhsc-server stopped")
	return nil
}
