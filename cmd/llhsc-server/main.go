// Command llhsc-server serves the llhsc checker as an HTTP API — the
// "cloud service" deployment of the paper's Section V. See
// internal/service for the endpoints.
//
// Usage:
//
//	llhsc-server [-addr :8080]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"llhsc/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "llhsc-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("llhsc-server", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("llhsc-server listening on %s", *addr)
	return srv.ListenAndServe()
}
