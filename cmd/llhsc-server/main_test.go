package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

// slowReader delivers its payload in two halves with a pause between
// them, keeping a request in flight across a server shutdown.
type slowReader struct {
	data  []byte
	pos   int
	pause time.Duration
	slept bool
}

func (r *slowReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	half := len(r.data) / 2
	if r.pos >= half && !r.slept {
		r.slept = true
		time.Sleep(r.pause)
	}
	end := r.pos + 1024
	if r.pos < half && end > half {
		end = half
	}
	if end > len(r.data) {
		end = len(r.data)
	}
	n := copy(p, r.data[r.pos:end])
	r.pos += n
	return n, nil
}

func TestGracefulShutdownDrainsInFlightCheck(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-shutdown-grace", "5s"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	// fetch the ready-made example request body
	resp, err := http.Get(base + "/example")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// start a /check whose body straddles the shutdown signal
	type result struct {
		status int
		ok     bool
		err    error
	}
	results := make(chan result, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, base+"/check",
			&slowReader{data: body, pause: 500 * time.Millisecond})
		if err != nil {
			results <- result{err: err}
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			results <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var out struct {
			OK bool `json:"ok"`
		}
		raw, _ := io.ReadAll(resp.Body)
		_ = json.Unmarshal(bytes.TrimSpace(raw), &out)
		results <- result{status: resp.StatusCode, ok: out.OK}
	}()

	// let the request get in flight, then deliver the shutdown signal
	time.Sleep(150 * time.Millisecond)
	cancel()

	select {
	case res := <-results:
		if res.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", res.err)
		}
		if res.status != http.StatusOK || !res.ok {
			t.Fatalf("in-flight request: status=%d ok=%v, want 200/true", res.status, res.ok)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never exited after drain")
	}

	// new connections must be refused once the server is down
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

// startServer boots run() with the given extra flags and returns the
// base URL plus stop/wait controls.
func startServer(t *testing.T, extra ...string) (base string, stop func(), wait func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-shutdown-grace", "5s"}, extra...)
	go func() { done <- run(ctx, args, ready) }()
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	return base, cancel, func() error {
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("server never exited")
			return nil
		}
	}
}

func TestUnknownDegradeModeRejected(t *testing.T) {
	err := run(context.Background(), []string{"-degrade", "bogus"}, nil)
	if err == nil {
		t.Fatal("bogus -degrade mode accepted")
	}
}

func TestCacheDirRequiresCacheSize(t *testing.T) {
	err := run(context.Background(), []string{"-cache-dir", t.TempDir(), "-cache-size", "0"}, nil)
	if err == nil {
		t.Fatal("-cache-dir with -cache-size 0 accepted")
	}
}

// The binary-level durability path: a server started with -cache-dir
// persists check results across a full stop/start cycle, and the
// restarted process serves them from disk.
func TestServerPersistentCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	base, stop, wait := startServer(t, "-cache-dir", dir, "-log-requests=false")
	resp, err := http.Get(base + "/example")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	post := func(base string) {
		t.Helper()
		resp, err := http.Post(base+"/check", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/check status = %d", resp.StatusCode)
		}
	}
	post(base)
	stop()
	if err := wait(); err != nil {
		t.Fatalf("first server exit: %v", err)
	}

	base2, stop2, wait2 := startServer(t, "-cache-dir", dir, "-log-requests=false")
	post(base2)
	resp, err = http.Get(base2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		PersistCache struct {
			DiskHits uint64 `json:"disk_hits"`
		} `json:"persistCache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.PersistCache.DiskHits == 0 {
		t.Fatal("restarted server served no disk hits for a repeated check")
	}
	stop2()
	if err := wait2(); err != nil {
		t.Fatalf("second server exit: %v", err)
	}
}
