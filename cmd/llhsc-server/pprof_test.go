package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// freeLoopbackPort reserves a port on 127.0.0.1 and releases it for the
// server under test to claim.
func freeLoopbackPort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

func TestPprofEndpointOptIn(t *testing.T) {
	port := freeLoopbackPort(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-pprof", fmt.Sprint(port),
			"-shutdown-grace", "2s",
		}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	// The profiler answers on its own loopback port...
	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/debug/pprof/", port))
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index = %d %q", resp.StatusCode, string(body[:min(len(body), 120)]))
	}

	// ...and is NOT reachable through the service listener.
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("service listener: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof is exposed on the public service address")
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server never exited")
	}
}
