package main

import "testing"

func TestListAndSingleExperiment(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	for _, exp := range []string{"e1", "e4", "e10"} {
		if err := run([]string{"-exp", exp}); err != nil {
			t.Errorf("-exp %s: %v", exp, err)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "e99"}); err == nil {
		t.Error("unknown experiment should fail")
	}
}
