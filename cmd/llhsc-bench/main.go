// Command llhsc-bench regenerates every table and figure of the paper
// (experiments E1–E7) plus the scaling/ablation extensions (E8–E19).
// See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// recorded results.
//
// Usage:
//
//	llhsc-bench                              # run everything
//	llhsc-bench -exp e5                      # run one experiment
//	llhsc-bench -parallel-json BENCH_parallel.json   # emit the E13 artifact
//	llhsc-bench -semantic-json BENCH_semantic.json   # emit the E14 artifact
//	llhsc-bench -obs-json BENCH_obs.json             # emit the E15 artifact
//	llhsc-bench -lifted-json BENCH_lifted.json       # emit the E16 artifact
//	llhsc-bench -persist-json BENCH_persist.json     # emit the E17 artifact
//	llhsc-bench -word-json BENCH_word.json           # emit the E18 artifact
//	llhsc-bench -obsdeep-json BENCH_obsdeep.json     # emit the E19 artifact
//	llhsc-bench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"llhsc/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "llhsc-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("llhsc-bench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (e1..e19) or 'all'")
	list := fs.Bool("list", false, "list experiments")
	parallelJSON := fs.String("parallel-json", "",
		"write the E13 parallel-speedup measurement to this JSON file and exit")
	parallelVMs := fs.Int("parallel-vms", 8, "product-line size for -parallel-json")
	semanticJSON := fs.String("semantic-json", "",
		"write the E14 semantic-strategy measurement to this JSON file and exit")
	obsJSON := fs.String("obs-json", "",
		"write the E15 observability-overhead measurement to this JSON file and exit")
	obsVMs := fs.Int("obs-vms", 6, "product-line size for -obs-json")
	liftedJSON := fs.String("lifted-json", "",
		"write the E16 lifted-vs-enumerative measurement to this JSON file and exit")
	persistJSON := fs.String("persist-json", "",
		"write the E17 warm-restart recovery measurement to this JSON file and exit")
	persistVMs := fs.Int("persist-vms", 6, "product-line size for -persist-json")
	wordJSON := fs.String("word-json", "",
		"write the E18 word-tier measurement to this JSON file and exit")
	obsdeepJSON := fs.String("obsdeep-json", "",
		"write the E19 deep-diagnostics overhead measurement to this JSON file and exit")
	obsdeepVMs := fs.Int("obsdeep-vms", 6, "product-line size for -obsdeep-json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallelJSON != "" {
		if err := bench.WriteParallelJSON(*parallelJSON, *parallelVMs); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *parallelJSON)
		return nil
	}
	if *semanticJSON != "" {
		if err := bench.WriteSemanticJSON(*semanticJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *semanticJSON)
		return nil
	}
	if *obsJSON != "" {
		if err := bench.WriteObsJSON(*obsJSON, *obsVMs); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *obsJSON)
		return nil
	}
	if *liftedJSON != "" {
		if err := bench.WriteLiftedJSON(*liftedJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *liftedJSON)
		return nil
	}
	if *persistJSON != "" {
		if err := bench.WritePersistJSON(*persistJSON, *persistVMs); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *persistJSON)
		return nil
	}
	if *wordJSON != "" {
		if err := bench.WriteWordJSON(*wordJSON); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *wordJSON)
		return nil
	}
	if *obsdeepJSON != "" {
		if err := bench.WriteDeepObsJSON(*obsdeepJSON, *obsdeepVMs); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *obsdeepJSON)
		return nil
	}
	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *exp == "all" {
		return bench.RunAll(os.Stdout)
	}
	for _, e := range bench.Experiments() {
		if e.ID == *exp {
			return e.Run(os.Stdout)
		}
	}
	return fmt.Errorf("unknown experiment %q (use -list)", *exp)
}
